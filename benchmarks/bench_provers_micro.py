"""E7 — Section 6 micro-benchmarks of the individual reasoning engines.

Synthetic scaling families exercise each decision procedure in isolation:

* WS1S (MONA role): subset-chain transitivity with a growing number of set
  variables — automaton product and projection cost;
* BAPA: cardinality of a union of n pairwise-disjoint singletons — the
  2**n Venn-region reduction;
* congruence closure (EUF): equality chains of growing length;
* Fourier–Motzkin (LIA): chains of difference constraints;
* resolution (FOL role): transitivity chains over an uninterpreted relation;
* the SAT core: pigeonhole-like unsatisfiable instances.

These run in milliseconds-to-seconds and use the normal pytest-benchmark
statistics (several rounds), unlike the one-shot verification benchmarks.
"""

from __future__ import annotations

import pytest

from repro.bapa.prover import BapaProver
from repro.fol.prover import FirstOrderProver
from repro.fol.terms import FApp, FVar
from repro.form.parser import parse_formula as parse
from repro.mona import ws1s
from repro.smt.congruence import check_euf
from repro.smt.lia import check_lia
from repro.smt.sat import SatSolver
from repro.vcgen.sequent import sequent


@pytest.mark.parametrize("size", [2, 3, 4])
def test_ws1s_subset_chain(benchmark, size):
    names = [f"X{i}" for i in range(size + 1)]
    chain = ws1s.AndW(tuple(ws1s.SubsetW(names[i], names[i + 1]) for i in range(size)))
    formula = ws1s.ImpliesW(chain, ws1s.SubsetW(names[0], names[-1]))
    result = benchmark(lambda: ws1s.is_valid(formula))
    assert result is True


@pytest.mark.parametrize("size", [2, 3, 4])
def test_bapa_disjoint_union_cardinality(benchmark, size):
    assumptions = [parse(f"x{i} ~: rest{i}") for i in range(size)]
    assumptions += [parse(f"rest{i} = rest{i+1} Un {{x{i+1}}}") for i in range(size - 1)]
    goal = parse(f"card (rest0 Un {{x0}}) >= 1")
    seq = sequent(assumptions, goal)
    prover = BapaProver()
    answer = benchmark(lambda: prover.prove(seq))
    assert answer.proved


@pytest.mark.parametrize("length", [10, 40, 80])
def test_congruence_closure_chain(benchmark, length):
    constants = [FApp(f"c{i}") for i in range(length + 1)]
    equalities = [(constants[i], constants[i + 1]) for i in range(length)]
    disequalities = [(constants[0], constants[-1])]
    result = benchmark(lambda: check_euf(equalities, disequalities))
    assert result is False  # the chain forces c0 = cN, contradicting the disequality


@pytest.mark.parametrize("length", [5, 15, 30])
def test_fourier_motzkin_chain(benchmark, length):
    literals = [(parse(f"v{i} < v{i+1}"), True) for i in range(length)]
    literals.append((parse(f"v{length} < v0"), True))
    result = benchmark(lambda: check_lia(literals))
    assert result is False  # a strict cycle is infeasible


@pytest.mark.parametrize("length", [3, 5])
def test_resolution_transitivity_chain(benchmark, length):
    assumptions = [parse("ALL x y z. r x y & r y z --> r x z")]
    assumptions += [parse(f"r a{i} a{i+1}") for i in range(length)]
    goal = parse(f"r a0 a{length}")
    seq = sequent(assumptions, goal)
    prover = FirstOrderProver(timeout=10.0)
    answer = benchmark(lambda: prover.prove(seq))
    assert answer.proved


@pytest.mark.parametrize("holes", [4, 6])
def test_sat_pigeonhole(benchmark, holes):
    pigeons = holes + 1

    def build_and_solve():
        solver = SatSolver(pigeons * holes)

        def var(p, h):
            return p * holes + h + 1

        for p in range(pigeons):
            solver.add_clause([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        return solver.solve()

    result = benchmark(build_and_solve)
    assert result.satisfiable is False
