"""E5 — Section 5.2 ablation: sensitivity to the prover order.

Jahob tries the provers in the user-given order and stops at the first
success, so putting a cheap prover that frequently succeeds first reduces
total time without changing what is proved.  This benchmark verifies the
same method under different orders and records the proved counts and times.
"""

from __future__ import annotations

import pytest

from repro import suite, verify
from conftest import FAST_PROVER_OPTIONS, run_once

ORDERS = {
    "smt-first": ["smt", "mona", "bapa"],
    "mona-first": ["mona", "bapa", "smt"],
    "bapa-first": ["bapa", "smt", "mona"],
}


@pytest.mark.parametrize("order_name", list(ORDERS))
def test_prover_order(benchmark, order_name):
    source = suite.source("SinglyLinkedList")

    def run():
        return verify(
            source,
            class_name="SinglyLinkedList",
            method="clear",
            provers=ORDERS[order_name],
            prover_options=FAST_PROVER_OPTIONS,
        )

    report = run_once(benchmark, run)
    benchmark.extra_info.update(
        {
            "order": ORDERS[order_name],
            "proved": report.proved_sequents,
            "total": report.total_sequents,
            "per_prover": {p: report.proved_by(p) for p in report.prover_order},
        }
    )
    assert report.proved_sequents >= 0
