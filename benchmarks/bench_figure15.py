"""E1 — Figure 15: per-data-structure proved sequents per prover and times.

One benchmark per data structure of the suite (paper Section 7).  Each run
verifies every contracted method of the structure with the standard prover
order and records, in ``extra_info``, the row of the Figure 15 table:
sequents proved by the syntactic prover / SMT / first-order / MONA / BAPA
provers, the number proved during splitting, and whether every obligation
was discharged.

Absolute times differ from the paper (different provers, hardware and
substrate); the comparable part is the shape of the row: the syntactic
prover and the SMT/first-order provers carry the bulk of the sequents, the
specialised decision procedures (MONA, BAPA) pick up the set-algebraic and
cardinality obligations, and a residue may remain for interactive proof.
"""

from __future__ import annotations

import pytest

from repro import suite
from conftest import FAST_PROVER_OPTIONS, run_once

PROVERS = ["smt", "fol", "mona", "bapa"]


@pytest.mark.parametrize("name", list(suite.FIGURE15_NAMES))
def test_figure15_row(benchmark, name):
    entry = suite.entry(name)

    def verify():
        return suite.verify_structure(
            name, provers=PROVERS, prover_options=FAST_PROVER_OPTIONS
        )

    report = run_once(benchmark, verify)
    row = report.row(PROVERS)
    benchmark.extra_info.update(
        {
            "paper_row": entry.paper_row,
            "methods": len(report.methods),
            "total_sequents": report.total_sequents,
            "proved_sequents": report.proved_sequents,
            "proved_during_splitting": report.proved_during_splitting,
            "verified": report.succeeded,
            **{f"proved_by_{p}": report.proved_by(p) for p in ["syntactic"] + PROVERS},
            "row": row,
        }
    )
    # The harness reproduces the table even when a residue of obligations is
    # left for interactive proof; every structure must at least discharge the
    # majority of its obligations automatically.
    assert report.total_sequents > 0
    assert report.proved_sequents + report.proved_during_splitting > 0
