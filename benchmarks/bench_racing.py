#!/usr/bin/env python3
"""Racing-dispatch benchmark: learned-order race=K vs the fixed portfolio.

Two cold passes over the selected Figure-15 structures, identical in every
respect except the dispatch mode:

* ``fixed`` — the classic fixed-order chain (``race=1``).  Its live
  outcomes feed a :class:`repro.provers.ordering.ProverOrdering`, exactly
  the table a warm daemon or a ``--race`` table run would have accumulated.
* ``racing`` — ``race=K`` (default 2) with that learned table: the top-K
  provers per feature bucket race with hedged starts, first PROVED wins,
  losers are cancelled at their next checkpoint poll.

Both passes run cold (no sequent cache), so the ratio isolates what racing
itself buys: learned first-guesses plus hedged overtaking of engines that
are grinding toward a timeout.  The run *asserts* the racing contract —
identical proved counts per structure (wave fall-through means racing never
changes *what* is proved) and per-structure wall no worse than fixed order
within ``--tolerance`` — and reports the aggregate speedup over the
FOL/SMT-heavy structures, where deadline burn is concentrated and the
paper's portfolio ordering costs the most.

Usage::

    python benchmarks/bench_racing.py                   # full suite, writes BENCH json
    python benchmarks/bench_racing.py --smoke           # 3-structure smoke scale
    python benchmarks/bench_racing.py --smoke --check BENCH_racing.json

``--check`` is the CI regression gate: re-measure the racing smoke run and
fail if its wall regressed more than ``--tolerance`` against the committed
reference, after normalising by the machine-speed calibration loop recorded
alongside (mirrors ``bench_hot_paths.py --check``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

PROVERS = ["smt", "fol", "mona", "bapa"]
OPTIONS = {"smt": {"timeout": 3.0}, "fol": {"timeout": 1.5}, "mona": {"timeout": 2.0}}
#: Smoke scale: AssocList and PriorityQueue are the FOL/SMT-heavy rows
#: (arithmetic/equality goals where smt/fol either prove or burn budget),
#: SinglyLinkedList adds MONA reachability goals and open obligations.
SMOKE_NAMES = ["AssocList", "SinglyLinkedList", "PriorityQueue"]
#: Structures whose obligations are dominated by the FOL/SMT engines; the
#: aggregate-speedup assertion runs over these.
FOL_SMT_HEAVY = ["AssocList", "SinglyLinkedList"]


def run_pass(names: List[str], race: int, ordering) -> Dict[str, dict]:
    from repro import suite

    results: Dict[str, dict] = {}
    for name in names:
        start = time.perf_counter()
        report = suite.verify_structure(
            name, provers=PROVERS, prover_options=OPTIONS, dedup=True,
            race=race, ordering=ordering,
        )
        wall = time.perf_counter() - start
        results[name] = {
            "wall_s": round(wall, 3),
            "proved": report.proved_sequents,
            "total": report.total_sequents,
            "races_run": report.races_run,
            "race_wins": dict(report.race_wins),
            "cancelled_answers": report.cancelled_answers,
            "cancelled_reclaimed_s": round(report.cancelled_reclaimed, 3),
        }
        extra = ""
        if report.races_run:
            extra = (
                f", {report.races_run} races, {report.cancelled_answers} cancelled"
                f" ({report.cancelled_reclaimed:.1f}s reclaimed)"
            )
        print(
            f"  {name}: {wall:.2f}s, "
            f"{report.proved_sequents}/{report.total_sequents} proved{extra}",
            flush=True,
        )
    return results


def calibrate() -> float:
    """The machine-speed yardstick the CI gate normalises by (identical to
    the bench_hot_paths loop, so references are comparable)."""
    start = time.perf_counter()
    acc = 0
    for i in range(2_000_000):
        acc = (acc * 31 + i) % 1000003
    assert acc >= 0
    return time.perf_counter() - start


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help=f"run only {SMOKE_NAMES}")
    parser.add_argument("--race", type=int, default=2, help="racers per wave (default: 2)")
    parser.add_argument(
        "--output", default="BENCH_racing.json", help="where to write the results json"
    )
    parser.add_argument(
        "--check", metavar="JSON", default=None,
        help="CI gate: compare the racing run against a committed reference "
        "instead of writing a new one",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed relative per-structure wall overrun of racing vs fixed, "
        "and the --check gate's allowed regression (default: 25%%)",
    )
    args = parser.parse_args()

    from repro.provers.ordering import ProverOrdering

    names = SMOKE_NAMES if args.smoke else None
    if names is None:
        from repro import suite

        names = list(suite.FIGURE15_NAMES)
    scale = "smoke" if args.smoke else "full"
    calibration = calibrate()
    print(f"scale={scale}, race={args.race}, calibration loop {calibration:.3f}s")

    # Pass 1 always runs (even under --check): the racing pass needs the
    # learned table, and a fixed-order pass is how a real deployment grows
    # one before switching --race on.
    ordering = ProverOrdering()
    print("fixed-order pass (race=1, feeding the ordering table):", flush=True)
    fixed = run_pass(names, race=1, ordering=ordering)
    fixed_wall = sum(r["wall_s"] for r in fixed.values())
    print(f"  learned {ordering.bucket_count()} feature buckets")

    print(f"racing pass (race={args.race}, learned ordering):", flush=True)
    racing = run_pass(names, race=args.race, ordering=ordering)
    racing_wall = sum(r["wall_s"] for r in racing.values())

    # The completeness contract: racing must prove exactly what fixed order
    # proves, structure by structure.
    mismatches = [
        name for name in names
        if racing[name]["proved"] != fixed[name]["proved"]
        or racing[name]["total"] != fixed[name]["total"]
    ]
    if mismatches:
        print(f"FAIL: proved counts differ between modes: {mismatches}", file=sys.stderr)
        return 1

    # Per-structure: racing is never worse than fixed order beyond the
    # tolerance (hedged starts + the early-release wave make a well-ordered
    # portfolio race at fixed-order speed; the tolerance absorbs scheduling
    # noise on structures with nothing to win).
    slower = [
        name for name in names
        if racing[name]["wall_s"] > fixed[name]["wall_s"] * (1.0 + args.tolerance) + 0.2
    ]
    if slower:
        print(
            f"FAIL: racing slower than fixed order beyond tolerance on: {slower}",
            file=sys.stderr,
        )
        return 1

    heavy = [n for n in FOL_SMT_HEAVY if n in names]
    heavy_fixed = sum(fixed[n]["wall_s"] for n in heavy)
    heavy_racing = sum(racing[n]["wall_s"] for n in heavy)
    speedup = fixed_wall / racing_wall if racing_wall else float("inf")
    heavy_speedup = heavy_fixed / heavy_racing if heavy_racing else float("inf")
    print(
        f"\ncold suite: fixed {fixed_wall:.2f}s, racing {racing_wall:.2f}s "
        f"(speedup {speedup:.2f}x); FOL/SMT-heavy {heavy_fixed:.2f}s -> "
        f"{heavy_racing:.2f}s (speedup {heavy_speedup:.2f}x)"
    )
    if heavy and heavy_speedup <= 1.0:
        print(
            f"FAIL: no aggregate speedup on FOL/SMT-heavy structures "
            f"({heavy_speedup:.2f}x)",
            file=sys.stderr,
        )
        return 1

    if args.check:
        with open(args.check) as fh:
            reference = json.load(fh)
        ref_scale = reference["scale"]
        if ref_scale != scale:
            ref_wall = reference.get("smoke_racing_wall_s")
            if ref_wall is None:
                print(f"reference is {ref_scale}-scale and has no smoke numbers", file=sys.stderr)
                return 2
        else:
            ref_wall = reference["racing_wall_s"]
        ref_calibration = reference["calibration_s"]
        speed_ratio = calibration / ref_calibration
        allowed = ref_wall * speed_ratio * (1.0 + args.tolerance)
        verdict = "OK" if racing_wall <= allowed else "REGRESSION"
        print(
            f"gate: measured {racing_wall:.2f}s vs reference {ref_wall:.2f}s "
            f"(machine x{speed_ratio:.2f}, allowed {allowed:.2f}s) -> {verdict}"
        )
        return 0 if racing_wall <= allowed else 1

    payload = {
        "benchmark": "racing_cold_suite",
        "scale": scale,
        "race": args.race,
        "provers": PROVERS,
        "prover_options": OPTIONS,
        "calibration_s": round(calibration, 4),
        "fixed_wall_s": round(fixed_wall, 3),
        "racing_wall_s": round(racing_wall, 3),
        "speedup": round(speedup, 3),
        "fol_smt_heavy": heavy,
        "fol_smt_heavy_speedup": round(heavy_speedup, 3),
        "ordering_buckets": ordering.bucket_count(),
        "structures": {
            name: {"fixed": fixed[name], "racing": racing[name]} for name in names
        },
    }
    if not args.smoke:
        payload["smoke_racing_wall_s"] = round(
            sum(racing[n]["wall_s"] for n in SMOKE_NAMES if n in racing), 3
        )
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
