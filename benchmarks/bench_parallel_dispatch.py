"""P1 — parallel cached dispatch: scaling with workers, near-free re-runs.

The integrated-reasoning loop is embarrassingly parallel: splitting turns
one verification condition into many independent sequents (Sections
5.1-5.2), each offered to the portfolio in isolation.  This benchmark
measures the two scaling levers of the dispatch subsystem:

* ``workers=N`` — a verification run dispatched on a worker pool, with the
  deterministic merge keeping outcomes and per-prover statistics identical
  to the sequential dispatcher;
* the normalized-sequent result cache — a second verification of the same
  class replays every verdict (100% hit rate, zero sequents re-proved).
"""

from __future__ import annotations

import os

from repro import suite, verify_class
from repro.java.resolver import parse_program
from repro.provers.cache import SequentCache
from repro.provers.dispatcher import Dispatcher, ParallelDispatcher, make_provers
from repro.vcgen.vcgen import generate_method_vc

from conftest import run_once

STRUCTURE = "SinglyLinkedList"
#: The benchmark measures the dispatch layer (fan-out, merge, cache), not
#: prover power: a single engine with a tight timeout keeps the open
#: obligations of the harder methods from dominating the wall time.
PROVERS = ["smt"]
OPTIONS = {"smt": {"timeout": 0.5}}


def _sequent_batch():
    program = parse_program(suite.source(STRUCTURE))
    sequents = []
    for info in program.methods_of(STRUCTURE):
        if info.decl.body is None or not info.decl.contract_text:
            continue
        sequents.extend(generate_method_vc(program, STRUCTURE, info.decl.name).sequents)
    return sequents


def test_parallel_dispatch_matches_sequential(benchmark):
    """workers=4 over one class's sequents; outcomes must equal sequential."""
    sequents = _sequent_batch()
    names = ["syntactic"] + PROVERS
    sequential = Dispatcher(make_provers(names, **OPTIONS)).prove_all(sequents)

    def run():
        return ParallelDispatcher.from_names(
            names, workers=4, **OPTIONS
        ).prove_all(sequents)

    parallel = run_once(benchmark, run)
    benchmark.extra_info.update(
        {
            "sequents": parallel.total,
            "proved": parallel.proved,
            "workers": parallel.workers,
            "wall_time_s": round(parallel.wall_time, 3),
            "cpu_time_s": round(parallel.cpu_time, 3),
            "sequential_wall_time_s": round(sequential.wall_time, 3),
            "worker_utilization": {
                w: round(u, 3) for w, u in parallel.worker_utilization.items()
            },
        }
    )
    assert [(o.proved, o.prover) for o in parallel.outcomes] == [
        (o.proved, o.prover) for o in sequential.outcomes
    ]
    assert {name: (s.attempted, s.proved) for name, s in parallel.stats.items()} == {
        name: (s.attempted, s.proved) for name, s in sequential.stats.items()
    }


def test_cached_reverification_is_near_free(benchmark):
    """Verify the class twice with a shared cache; the second run replays
    every verdict (the acceptance criterion: 0 sequents re-proved)."""
    source = suite.source(STRUCTURE)
    cache = SequentCache()
    first = verify_class(
        source, class_name=STRUCTURE, provers=PROVERS,
        prover_options=OPTIONS, cache=cache,
    )

    def run():
        return verify_class(
            source, class_name=STRUCTURE, provers=PROVERS,
            prover_options=OPTIONS, cache=cache,
        )

    second = run_once(benchmark, run)
    benchmark.extra_info.update(
        {
            "first_run_time_s": round(first.total_time, 3),
            "second_run_time_s": round(second.total_time, 3),
            "first_hit_rate": round(first.cache_hit_rate, 3),
            "second_hit_rate": round(second.cache_hit_rate, 3),
            "second_proved_from_cache": second.proved_from_cache,
            "speedup": round(first.total_time / max(second.total_time, 1e-9), 1),
        }
    )
    assert second.proved_sequents == first.proved_sequents
    # 100% hit rate: every lookup of the re-verification is answered by the
    # cache, and no sequent is re-proved by running a prover.
    assert second.cache_hit_rate == 1.0
    assert second.proved_from_cache == second.proved_sequents
    assert sum(s.attempted for s in second.methods[0].prover_stats.values()) == 0


def test_tight_budget_dispatch_never_overruns(benchmark):
    """Timeout-stress smoke (run by CI with DISPATCH_SEQUENT_BUDGET tightened):
    dispatch the full portfolio over one class's sequents under an enforced
    per-sequent budget; no sequent's live prover time may overrun it by more
    than the 0.25s epsilon."""
    budget = float(os.environ.get("DISPATCH_SEQUENT_BUDGET", "0.5"))
    epsilon = 0.25
    sequents = _sequent_batch()
    dispatcher = Dispatcher(
        make_provers(["syntactic", "smt", "fol", "mona", "bapa"]),
        sequent_budget=budget,
    )

    result = run_once(benchmark, lambda: dispatcher.prove_all(sequents))
    overruns = []
    for outcome in result.outcomes:
        live = sum(a.time for a in outcome.answers if not a.cached)
        if live > budget + epsilon:
            overruns.append((outcome.sequent.origin, round(live, 3)))
    benchmark.extra_info.update(
        {
            "sequents": result.total,
            "proved": result.proved,
            "budget_s": budget,
            "max_live_s": round(
                max(
                    (sum(a.time for a in o.answers if not a.cached) for o in result.outcomes),
                    default=0.0,
                ),
                3,
            ),
        }
    )
    assert not overruns, f"sequents overran the enforced budget: {overruns}"
