#!/usr/bin/env python3
"""Whole-suite cold-verify benchmark of the hot-path optimisations.

Runs the full Figure-15 suite cold (no sequent cache) in two modes that
differ **only** in the performance changes introduced with the hash-consing
term layer and the incremental DPLL(T) trail:

* ``baseline`` — the pre-change shipped configuration: ``interning=False,
  incremental=False, fragment_gate=False`` on every prover (terms are
  rebuilt structurally, the SAT core re-solves from scratch after every
  theory blocking clause, cardinality/arithmetic goals burn their full
  budget in engines that never decide them) under the pre-change default
  budgets (SMT 5 s, FOL 5 s, MONA 10 s).
* ``optimized`` — the shipped defaults after the change: all flags on,
  and the profile-guided budget re-tunes that the optimisations enable
  (SMT 3 s — its slowest genuine proof now lands comfortably inside it —
  FOL 1.5 s, MONA 2 s; each engine's proofs all complete well under the
  new budget, so the old ones were pure deadline burn on undecidable
  goals).

Everything else is held fixed (same prover order, same machine, same
process), so the wall-clock ratio is exactly what a cold
``examples/figure15_table.py`` run gained from this change-set.  The run
*asserts* that both modes prove exactly the same sequents per structure —
the optimisations must be observationally invisible — and (full scale
only) that the speedup is at least ``--min-speedup`` (default 2.0).

Usage::

    python benchmarks/bench_hot_paths.py                  # full suite, writes BENCH json
    python benchmarks/bench_hot_paths.py --smoke          # 3-structure smoke scale
    python benchmarks/bench_hot_paths.py --smoke --check BENCH_hot_paths.json

``--check`` is the CI regression gate: re-measure the optimized smoke run
and fail if its wall time regressed more than ``--tolerance`` (default 20%)
against the committed reference — after normalising by the machine-speed
calibration loop recorded alongside, so a slower runner does not fail the
gate spuriously.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

PROVERS = ["smt", "fol", "mona", "bapa"]
#: Structures whose cold verify exercises every engine, kept small enough
#: for CI: AssocList (SMT-heavy), SinglyLinkedList (MONA + open goals),
#: PriorityQueue (cardinality goals -> the fragment gates).
SMOKE_NAMES = ["AssocList", "SinglyLinkedList", "PriorityQueue"]


def prover_options(optimized: bool) -> Dict[str, dict]:
    """Each mode is the *shipped* configuration of its era, spelled out
    explicitly so the benchmark stays meaningful if defaults drift again:
    baseline is the pre-change defaults, optimized the current ones."""
    flags = dict(interning=optimized, incremental=optimized, fragment_gate=optimized)
    return {
        "smt": dict(timeout=3.0 if optimized else 5.0, **flags),
        "fol": {
            "timeout": 1.5 if optimized else 5.0,
            "interning": optimized,
            "fragment_gate": optimized,
        },
        "mona": {"timeout": 2.0 if optimized else 10.0, "fragment_gate": optimized},
    }


def run_mode(names: List[str], optimized: bool) -> Dict[str, dict]:
    from repro import suite

    options = prover_options(optimized)
    results: Dict[str, dict] = {}
    for name in names:
        start = time.perf_counter()
        report = suite.verify_structure(
            name, provers=PROVERS, prover_options=options, dedup=True
        )
        wall = time.perf_counter() - start
        results[name] = {
            "wall_s": round(wall, 3),
            "proved": report.proved_sequents,
            "total": report.total_sequents,
            "phase_times": {
                prover: {k: round(v, 3) for k, v in phases.items()}
                for prover, phases in report.phase_times().items()
            },
        }
        print(
            f"  {name}: {wall:.2f}s, {report.proved_sequents}/{report.total_sequents} proved",
            flush=True,
        )
    return results


def calibrate() -> float:
    """A fixed pure-Python work loop, timed: the machine-speed yardstick the
    CI gate uses to normalise wall times across runners."""
    start = time.perf_counter()
    acc = 0
    for i in range(2_000_000):
        acc = (acc * 31 + i) % 1000003
    assert acc >= 0
    return time.perf_counter() - start


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help=f"run only {SMOKE_NAMES}")
    parser.add_argument(
        "--output", default="BENCH_hot_paths.json", help="where to write the results json"
    )
    parser.add_argument(
        "--check", metavar="JSON", default=None,
        help="CI gate: compare the optimized run against a committed reference "
        "instead of writing a new one",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed relative wall regression in --check mode (default: 20%%)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=2.0,
        help="required baseline/optimized wall ratio at full scale (default: 2.0)",
    )
    args = parser.parse_args()

    names = SMOKE_NAMES if args.smoke else None
    if names is None:
        from repro import suite

        names = list(suite.FIGURE15_NAMES)
    scale = "smoke" if args.smoke else "full"
    calibration = calibrate()
    print(f"scale={scale}, calibration loop {calibration:.3f}s")

    print("optimized mode (interning + incremental trail + fragment gates):", flush=True)
    optimized = run_mode(names, optimized=True)
    optimized_wall = sum(r["wall_s"] for r in optimized.values())

    if args.check:
        with open(args.check) as fh:
            reference = json.load(fh)
        ref_scale = reference["scale"]
        if ref_scale != scale:
            ref_wall = reference.get("smoke_optimized_wall_s")
            if ref_wall is None:
                print(f"reference is {ref_scale}-scale and has no smoke numbers", file=sys.stderr)
                return 2
        else:
            ref_wall = reference["optimized_wall_s"]
        ref_calibration = reference["calibration_s"]
        # Normalise by machine speed: a runner 1.5x slower than the reference
        # machine is allowed 1.5x the wall before the tolerance applies.
        speed_ratio = calibration / ref_calibration
        allowed = ref_wall * speed_ratio * (1.0 + args.tolerance)
        verdict = "OK" if optimized_wall <= allowed else "REGRESSION"
        print(
            f"gate: measured {optimized_wall:.2f}s vs reference {ref_wall:.2f}s "
            f"(machine x{speed_ratio:.2f}, allowed {allowed:.2f}s) -> {verdict}"
        )
        return 0 if optimized_wall <= allowed else 1

    print("baseline mode (flags off):", flush=True)
    baseline = run_mode(names, optimized=False)
    baseline_wall = sum(r["wall_s"] for r in baseline.values())

    mismatches = [
        name
        for name in names
        if baseline[name]["proved"] != optimized[name]["proved"]
        or baseline[name]["total"] != optimized[name]["total"]
    ]
    if mismatches:
        print(f"FAIL: proved counts differ between modes: {mismatches}", file=sys.stderr)
        return 1

    speedup = baseline_wall / optimized_wall if optimized_wall else float("inf")
    print(
        f"\nsuite cold verify: baseline {baseline_wall:.2f}s, "
        f"optimized {optimized_wall:.2f}s, speedup {speedup:.2f}x"
    )

    payload = {
        "benchmark": "hot_paths_cold_suite",
        "scale": scale,
        "provers": PROVERS,
        "prover_options": {"baseline": prover_options(False), "optimized": prover_options(True)},
        "calibration_s": round(calibration, 4),
        "baseline_wall_s": round(baseline_wall, 3),
        "optimized_wall_s": round(optimized_wall, 3),
        "speedup": round(speedup, 3),
        "structures": {
            name: {"baseline": baseline[name], "optimized": optimized[name]}
            for name in names
        },
    }
    if not args.smoke:
        # Record smoke-scale numbers from the same run so the CI gate has a
        # same-machine reference without a second full run.
        payload["smoke_optimized_wall_s"] = round(
            sum(optimized[n]["wall_s"] for n in SMOKE_NAMES if n in optimized), 3
        )
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if not args.smoke and speedup < args.min_speedup:
        print(
            f"FAIL: speedup {speedup:.2f}x below required {args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
