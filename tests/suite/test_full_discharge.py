"""Full-discharge regression expectations for the bundled suite.

These pin the portfolio's headline results after the E-matching
instantiation engine landed (see ISSUE 5 / CHANGES):

* the bundled suite sources contain **zero trusted ``assume`` statements**
  — the two lookup loop terminators (``AssocList.lookup``,
  ``HashTable.lookup``) were the last ones, retired by the reverse content
  invariant (every `content` pair is stored in a reachable node) that the
  E-matching SMT engine instantiates at the loop exits;
* every method in the full-discharge set below keeps discharging all of
  its obligations under the default budget (a method regressing to an
  unproved — UNKNOWN/TIMEOUT — sequent fails its entry here), and does so
  with ``trusted_assumes == 0`` — i.e. ``fully_verified``;
* the lookup sequent counts are pinned so a quiet change in splitting or
  VC generation is loud;
* verdicts computed under one ``instantiation=`` setting are never
  replayed from the sequent cache under another.
"""

import re

import pytest

from repro import suite, verify
from repro.java.resolver import parse_program
from repro.provers.cache import SequentCache
from repro.smt.prover import SmtProver
from repro.vcgen.vcgen import generate_method_vc

PROVERS = ["smt", "fol", "mona", "bapa"]
#: The SMT prover carries the new reverse-content obligations (E-matching
#: needs a few instantiation rounds), so it gets a larger slice than the
#: PR-3 configuration gave it; the per-sequent budget still caps the chain.
OPTIONS = {"smt": {"timeout": 6.0}, "fol": {"timeout": 10.0}}
BUDGET = 18.0

#: Methods that discharge *every* obligation under the default budget.
#: (The remaining suite methods — e.g. HashTable.put, PriorityQueue.insert —
#: still leave sequents open; they are tracked in ROADMAP, not here.)
FULL_DISCHARGE = [
    ("ArrayList", "size"),
    ("ArrayList", "isEmpty"),
    ("AssocList", "put"),
    ("AssocList", "lookup"),
    ("AssocList", "clear"),
    ("BinarySearchTree", "clear"),
    ("BinarySearchTree", "isEmpty"),
    ("BinarySearchTree", "contains"),
    ("BinarySearchTree", "insert"),
    ("CircularList", "isEmpty"),
    ("CircularList", "add"),
    ("CursorList", "add"),
    ("CursorList", "reset"),
    ("CursorList", "done"),
    ("HashTable", "size"),
    ("HashTable", "lookup"),
    ("PriorityQueue", "size"),
    ("PriorityQueue", "isEmpty"),
    ("SinglyLinkedList", "add"),
    ("SinglyLinkedList", "isEmpty"),
    ("SizedList", "size"),
    ("SizedList", "clear"),
    ("SpaceSubdivisionTree", "insert"),
    ("SpanningTree", "init"),
    ("SpanningTree", "addEdge"),
    ("SpanningTree", "inTree"),
]

#: Pinned sequent counts of the two retired-assume lookups: a change in
#: splitting or VC generation that silently alters the obligation set
#: should fail loudly, not dissolve into "still all proved".
LOOKUP_SEQUENTS = {
    ("AssocList", "lookup"): 8,
    ("HashTable", "lookup"): 9,
}


def _verify(structure, method):
    return verify(
        suite.source(structure),
        class_name=structure,
        method=method,
        provers=PROVERS,
        prover_options=OPTIONS,
        sequent_budget=BUDGET,
    )


def test_bst_insert_verifies_with_zero_trusted_assumes():
    """The PR-3 headline regression: BinarySearchTree.insert stays fully
    verified with no trusted step."""
    report = _verify("BinarySearchTree", "insert")
    assert report.succeeded, report.format()
    assert report.trusted_assumes == 0
    assert report.fully_verified


@pytest.mark.parametrize("structure, method", LOOKUP_SEQUENTS)
def test_lookups_fully_discharge_without_assume(structure, method):
    """The ISSUE-5 headline: both lookups verify end-to-end, their trusted
    terminators gone, with the pinned obligation counts."""
    report = _verify(structure, method)
    assert report.succeeded, report.format()
    assert report.trusted_assumes == 0
    assert report.fully_verified
    assert report.total_sequents == LOOKUP_SEQUENTS[(structure, method)], (
        f"{structure}.{method} obligation count changed: "
        f"{report.total_sequents} != {LOOKUP_SEQUENTS[(structure, method)]}"
    )
    # The reverse-content obligations are quantified: some prover must have
    # actually instantiated (a zero count means the engine was bypassed).
    assert report.instantiations > 0


def test_suite_sources_carry_no_assume_pragma():
    """Belt and braces: no bundled source contains an assume pragma at all
    (the per-method count below covers the parsed bodies)."""
    for name in suite.names():
        source = suite.source(name)
        assert not re.search(r"//:\s*assume", source), f"{name} carries an assume"


@pytest.mark.parametrize("structure, method", FULL_DISCHARGE)
def test_full_discharge_set_does_not_regress(structure, method):
    report = _verify(structure, method)
    assert report.succeeded, (
        f"{structure}.{method} regressed: "
        f"{report.proved_sequents}/{report.total_sequents} proved\n" + report.format()
    )
    # Every fully-discharging method is assume-free — the paper's claim.
    assert report.trusted_assumes == 0, f"{structure}.{method} carries a trusted assume"
    assert report.fully_verified


def test_whole_suite_has_zero_trusted_assumes():
    """Counted from the parsed bodies (no prover runs): no method of any
    bundled structure carries a trusted ``assume`` statement anymore."""
    counts = {}
    for name in suite.names():
        program = parse_program(suite.source(name))
        for info in program.methods_of(name):
            if info.decl.body is None or not info.decl.contract_text:
                continue
            vc = generate_method_vc(program, name, info.decl.name)
            if vc.trusted_assumes:
                counts[f"{name}.{info.decl.name}"] = vc.trusted_assumes
    assert counts == {}


# -- instantiation settings key the verdict cache ---------------------------


def test_instantiation_mode_is_part_of_the_options_signature():
    ematch = SmtProver(instantiation="ematch")
    ground = SmtProver(instantiation="ground")
    assert "mode='ematch'" in ematch.options_signature()
    assert "mode='ground'" in ground.options_signature()
    assert ematch.options_signature() != ground.options_signature()


def test_no_cached_verdict_replay_across_instantiation_settings():
    """A verdict computed under one instantiation setting must never be
    replayed for another: the cache key includes the mode and limits."""
    from repro.form.parser import parse_formula as parse
    from repro.vcgen.sequent import sequent

    seq = sequent([parse("ALL x. p x"), parse("q")], parse("p a"))
    cache = SequentCache()
    ematch = SmtProver(instantiation="ematch")
    answer = ematch.prove(seq)
    assert answer.proved
    cache.store(seq, ematch.name, answer, ematch.options_signature())
    # Same prover name, different instantiation settings: both the other
    # mode and changed E-matching limits must miss.
    ground = SmtProver(instantiation="ground")
    assert cache.lookup(seq, ground.name, ground.options_signature()) is None
    from repro.smt.instantiate import InstantiationConfig

    tighter = SmtProver(instantiation=InstantiationConfig(ematch_rounds=1))
    assert cache.lookup(seq, tighter.name, tighter.options_signature()) is None
    # And the identical configuration hits.
    again = SmtProver(instantiation="ematch")
    assert cache.lookup(seq, again.name, again.options_signature()) is not None
