"""Full-discharge regression expectations for the bundled suite.

These pin the portfolio's headline results after the set-of-support engine
landed (see ISSUE 4 / CHANGES):

* ``BinarySearchTree.insert`` verifies end-to-end with **zero trusted
  assume statements** — the placed/not-placed case-split invariant plus the
  fieldWrite-backbone axioms replaced the method's last trusted step;
* every method in the full-discharge set below keeps discharging all of
  its obligations under the default budget (a method regressing to an
  unproved — UNKNOWN/TIMEOUT — sequent fails its entry here);
* the terminating ``assume False`` of ``AssocList.lookup`` and
  ``HashTable.lookup`` are the only remaining trusted steps in the whole
  suite, and the count is tracked per method.
"""

import re

import pytest

from repro import suite, verify
from repro.java.resolver import parse_program
from repro.vcgen.vcgen import generate_method_vc

PROVERS = ["smt", "fol", "mona", "bapa"]
OPTIONS = {"smt": {"timeout": 1.5}, "fol": {"timeout": 10.0}}
BUDGET = 18.0

#: Methods that discharge *every* obligation under the default budget.
#: (The remaining suite methods — e.g. HashTable.put, PriorityQueue.insert —
#: still leave sequents open; they are tracked in ROADMAP, not here.)
FULL_DISCHARGE = [
    ("ArrayList", "size"),
    ("ArrayList", "isEmpty"),
    ("AssocList", "put"),
    ("AssocList", "lookup"),
    ("AssocList", "clear"),
    ("BinarySearchTree", "clear"),
    ("BinarySearchTree", "isEmpty"),
    ("BinarySearchTree", "contains"),
    ("BinarySearchTree", "insert"),
    ("CircularList", "isEmpty"),
    ("CircularList", "add"),
    ("CursorList", "add"),
    ("CursorList", "reset"),
    ("CursorList", "done"),
    ("HashTable", "size"),
    ("PriorityQueue", "size"),
    ("PriorityQueue", "isEmpty"),
    ("SinglyLinkedList", "add"),
    ("SinglyLinkedList", "isEmpty"),
    ("SizedList", "size"),
    ("SizedList", "clear"),
    ("SpaceSubdivisionTree", "insert"),
    ("SpanningTree", "init"),
    ("SpanningTree", "addEdge"),
    ("SpanningTree", "inTree"),
]


def _verify(structure, method):
    return verify(
        suite.source(structure),
        class_name=structure,
        method=method,
        provers=PROVERS,
        prover_options=OPTIONS,
        sequent_budget=BUDGET,
    )


def test_bst_insert_verifies_with_zero_trusted_assumes():
    """The headline regression: the paper's full-verification claim holds
    for BinarySearchTree.insert with no trusted step."""
    report = _verify("BinarySearchTree", "insert")
    assert report.succeeded, report.format()
    assert report.trusted_assumes == 0
    assert report.fully_verified


def test_bst_insert_source_carries_no_assume():
    """Belt and braces: the source text itself must not contain an assume
    pragma anywhere in insert (the report count covers the parsed body)."""
    source = suite.source("BinarySearchTree")
    start = source.index("void insert")
    # Bound the scan at the next method declaration (or EOF) so a later
    # method carrying a documented assume cannot fail insert's check.
    next_method = re.search(r"\n\s*(?:public|private|protected)?\s*\w+\s+\w+\s*\(", source[start + 1 :])
    end = start + 1 + next_method.start() if next_method else len(source)
    assert not re.search(r"//:\s*assume", source[start:end])


@pytest.mark.parametrize("structure, method", FULL_DISCHARGE)
def test_full_discharge_set_does_not_regress(structure, method):
    report = _verify(structure, method)
    assert report.succeeded, (
        f"{structure}.{method} regressed: "
        f"{report.proved_sequents}/{report.total_sequents} proved\n" + report.format()
    )


def test_lookup_terminators_are_the_suites_only_trusted_steps():
    """Counted from the parsed bodies (no prover runs): the whole suite
    carries exactly two assumes, the terminating ``assume False`` of the
    two lookup loops (BinarySearchTree.insert's is gone)."""
    counts = {}
    for name in suite.names():
        program = parse_program(suite.source(name))
        for info in program.methods_of(name):
            if info.decl.body is None or not info.decl.contract_text:
                continue
            vc = generate_method_vc(program, name, info.decl.name)
            if vc.trusted_assumes:
                counts[f"{name}.{info.decl.name}"] = vc.trusted_assumes
    assert counts == {"AssocList.lookup": 1, "HashTable.lookup": 1}
