"""The bundled data structure suite: sources parse, resolve and yield VCs."""

import pytest

from repro import suite
from repro.java.resolver import parse_program
from repro.vcgen.vcgen import generate_method_vc


def test_suite_lists_the_paper_structures():
    names = set(suite.names())
    assert {
        "AssocList",
        "SpaceSubdivisionTree",
        "SpanningTree",
        "HashTable",
        "BinarySearchTree",
        "PriorityQueue",
        "ArrayList",
        "CircularList",
        "SinglyLinkedList",
        "CursorList",
    } <= names
    assert len(suite.FIGURE15_NAMES) == 10


def test_entry_lookup_is_case_insensitive():
    assert suite.entry("assoclist").name == "AssocList"
    with pytest.raises(KeyError):
        suite.entry("NoSuchStructure")


@pytest.mark.parametrize("name", suite.names())
def test_sources_parse_and_resolve(name):
    program = parse_program(suite.source(name))
    assert name in program.class_names
    # Every structure declares a public abstract state variable.
    assert program.public_specvars
    # And at least one class invariant.
    assert program.invariants


@pytest.mark.parametrize("name", suite.names())
def test_every_contracted_method_yields_obligations(name):
    program = parse_program(suite.source(name))
    contracted = [
        info for info in program.methods_of(name)
        if info.decl.body is not None and info.decl.contract_text
    ]
    assert contracted, f"{name} has no contracted methods"
    for info in contracted:
        vc = generate_method_vc(program, name, info.decl.name)
        assert vc.total_obligations > 0, f"{name}.{info.decl.name} produced no obligations"


@pytest.mark.parametrize("name", suite.names())
def test_abstract_state_is_ghost_and_public(name):
    program = parse_program(suite.source(name))
    assert set(program.public_specvars) & set(program.ghost_vars) or program.public_specvars


def test_sources_carry_full_functional_contracts():
    # Spot-check that the headline operations state their effect on the
    # abstract state, not just shape properties.
    text = suite.source("SinglyLinkedList")
    assert 'ensures "content = old content Un {x}"' in text
    text = suite.source("AssocList")
    assert "(k0, result) : content" in text
    text = suite.source("SizedList")
    assert 'invariant SizeInv: "size = card content"' in text
