"""The BAPA decision procedure: Venn-region reduction and the prover interface."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bapa.prover import BapaProver
from repro.bapa.venn import BapaError, conjunction_satisfiable
from repro.form.parser import parse_formula as parse
from repro.vcgen.sequent import sequent


def _prove(assumptions, goal):
    seq = sequent([parse(a) for a in assumptions], parse(goal))
    return BapaProver().prove(seq)


VALID = [
    # cardinality of insertions (the sized-list invariant, Section 2.2)
    (["size = card content", "content1 = content Un {x}", "x ~: content"],
     "size + 1 = card content1"),
    (["size = card content", "x ~: content", "x ~= null"],
     "size + 1 = card (content Un {x})"),
    # set algebra with cardinalities
    (["A subseteq B"], "card A <= card B"),
    (["A subseteq B", "card B <= card A"], "A = B"),
    (["card A = 0"], "A = {}"),
    (["x : A"], "card A >= 1"),
    (["A Int B = {}"], "card (A Un B) = card A + card B"),
    (["A = {}"], "card A = 0"),
    # element reasoning through singleton sets
    (["fresh ~= null", "null ~: nodes"], "null ~: {fresh} Un nodes"),
    (["x ~= y"], "card {x, y} = 2"),
    (["x : A", "y : A", "x ~= y"], "card A >= 2"),
]


@pytest.mark.parametrize("assumptions, goal", VALID)
def test_proves_valid_bapa_sequents(assumptions, goal):
    answer = _prove(assumptions, goal)
    assert answer.proved, answer.detail


INVALID = [
    (["size = card content", "content1 = content Un {x}"], "size + 1 = card content1"),
    (["A subseteq B"], "card B <= card A"),
    ([], "card A >= 1"),
    (["null ~: nodes"], "null ~: {fresh} Un nodes"),
    (["x : A", "y : A"], "card A >= 2"),
    ([], "card (A Un B) = card A + card B"),
]


@pytest.mark.parametrize("assumptions, goal", INVALID)
def test_never_proves_invalid_bapa_sequents(assumptions, goal):
    assert not _prove(assumptions, goal).proved


def test_quantified_goal_is_declined():
    answer = _prove([], "ALL x. x : A --> card A >= 1")
    assert not answer.proved


def test_conjunction_satisfiable_raises_outside_fragment():
    with pytest.raises(BapaError):
        conjunction_satisfiable([(parse("x : {y. y ~= null}"), True)], set())


def test_too_many_set_variables_rejected():
    literals = [(parse(f"S{i} subseteq S{i+1}"), True) for i in range(8)]
    with pytest.raises(BapaError):
        conjunction_satisfiable(literals, {f"S{i}" for i in range(9)})


@given(st.integers(min_value=0, max_value=6), st.integers(min_value=0, max_value=6))
@settings(max_examples=30, deadline=None)
def test_cardinality_sum_property(n, m):
    """card A = n, card B = m, A and B disjoint entail card(A Un B) = n + m,
    and never entail a wrong total."""
    assumptions = [f"card A = {n}", f"card B = {m}", "A Int B = {}"]
    good = _prove(assumptions, f"card (A Un B) = {n + m}")
    assert good.proved
    bad = _prove(assumptions, f"card (A Un B) = {n + m + 1}")
    assert not bad.proved
