"""The MONA-role prover on sequents in the monadic fragment."""

import pytest

from repro.form.parser import parse_formula as parse
from repro.mona.prover import MonaProver
from repro.vcgen.sequent import sequent


def _prove(assumptions, goal):
    seq = sequent([parse(a) for a in assumptions], parse(goal))
    return MonaProver().prove(seq)


VALID = [
    (["ALL x. x : content --> x : alloc", "e : content"], "e : alloc"),
    (["content1 = content Un {e}", "ALL x. x : content --> x : nodes"],
     "ALL x. x : content1 --> x : nodes | x = e"),
    (["A subseteq B", "B subseteq C"], "A subseteq C"),
    ([], "ALL x. x : A | x ~: A"),
    (["x ~: content", "content1 = content Un {x}"], "content = content1 - {x}"),
    (["x ~= null", "old_content = content"], "{x} Un content = old_content Un {x}"),
    (["nodes = {}"], "ALL x. x ~: nodes"),
    (["A = B"], "B = A"),
    (["x : A", "A subseteq B", "B subseteq C"], "x : C"),
    (["content = iterated Un toIterate", "toIterate = {}"], "content = iterated"),
]


@pytest.mark.parametrize("assumptions, goal", VALID)
def test_proves_valid_monadic_sequents(assumptions, goal):
    answer = _prove(assumptions, goal)
    assert answer.proved, answer.detail


INVALID = [
    (["content1 = content Un {e}"], "ALL x. x : content1 --> x : content"),
    (["A subseteq B"], "B subseteq A"),
    ([], "x : A"),
    (["x : A Un B"], "x : A"),
    (["content = iterated Un toIterate"], "content = iterated"),
]


@pytest.mark.parametrize("assumptions, goal", INVALID)
def test_never_proves_invalid_monadic_sequents(assumptions, goal):
    assert not _prove(assumptions, goal).proved


OUTSIDE_FRAGMENT = [
    (["size = card content"], "size >= 0"),
    # Strict transitive closure has no reach-set abstraction (the
    # escape/suffix decomposition of repro.mona.reach covers reflexive
    # closures only); reflexive-closure goals are now *decided* — see
    # tests/mona/test_reach_decomposition.py.
    ([], "(x, y) : {(u, v). u..next = v}^+"),
]


@pytest.mark.parametrize("assumptions, goal", OUTSIDE_FRAGMENT)
def test_goals_outside_the_fragment_are_declined_not_misproved(assumptions, goal):
    answer = _prove(assumptions, goal)
    assert not answer.proved
    assert answer.verdict.value in ("unsupported", "unknown")


def test_out_of_fragment_assumptions_are_dropped_soundly():
    # The cardinality assumption cannot be encoded but the goal follows from
    # the remaining monadic assumptions alone.
    answer = _prove(
        ["size = card content", "x : content", "content subseteq alloc"],
        "x : alloc",
    )
    assert answer.proved
