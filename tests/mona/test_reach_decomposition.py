"""The MONA path on backbone reachability: reach-set reification and the
fieldWrite escape/suffix decomposition (mirrors the FOL backbone-axiom tests
in tests/fol/test_resolution.py, decided by WS1S instead of searched for by
resolution)."""

import pytest

from repro.form import ast as F
from repro.form.parser import parse_formula as parse
from repro.mona.prover import MonaProver
from repro.mona.reach import decompose_reachability
from repro.provers.base import Verdict
from repro.vcgen.sequent import Labeled, Sequent, sequent


REL = "{(u, v). u..next = v}"
WREL = "{(u, v). (fieldWrite next fresh first) u = v}"
TREE = "{(u, v). u..left = v | u..right = v}"


def _prove(assumptions, goal, timeout=10.0):
    seq = sequent([parse(a) for a in assumptions], parse(goal))
    return MonaProver(timeout=timeout).prove(seq)


# -- reach-set reification on plain backbones ---------------------------------------


def test_base_backbone_invariant_decides():
    """The alloc/backbone invariant shape becomes pure set reasoning."""
    answer = _prove(
        [f"ALL m. m ~= null & (first, m) : {REL}^* --> m : alloc",
         "w ~= null", f"(first, w) : {REL}^*"],
        "w : alloc",
    )
    assert answer.verdict is Verdict.PROVED


def test_union_backbone_invariant_decides():
    answer = _prove(
        [f"ALL m. m ~= null & (root, m) : {TREE}^* --> m : alloc",
         "w ~= null", f"(root, w) : {TREE}^*"],
        "w : alloc",
    )
    assert answer.verdict is Verdict.PROVED


def test_reachability_reflexivity_decides():
    answer = _prove(["x ~= null", f"ALL m. m ~= null & (x, m) : {REL}^* --> m : S"], "x : S")
    assert answer.verdict is Verdict.PROVED


def test_reachability_not_assumed_invalid():
    answer = _prove([], f"(x, y) : {REL}^*")
    assert answer.verdict is not Verdict.PROVED


def test_distinct_sources_get_distinct_reach_sets():
    """Reachability from one source must not prove reachability from another."""
    answer = _prove([f"(a, w) : {REL}^*"], f"(b, w) : {REL}^*")
    assert answer.verdict is not Verdict.PROVED
    # The same source still unifies with itself.
    answer = _prove([f"(a, w) : {REL}^*"], f"(a, w) : {REL}^*")
    assert answer.verdict is Verdict.PROVED


def test_distinct_backbones_get_distinct_reach_sets():
    answer = _prove([f"(a, w) : {REL}^*"], f"(a, w) : {TREE}^*")
    assert answer.verdict is not Verdict.PROVED


# -- escape/suffix decomposition of written backbones --------------------------------


def test_written_backbone_escape_and_suffix():
    """The put/insert invariant-exit shape: everything reachable through the
    updated backbone from the fresh head is the head itself or an old
    (allocated) node.  Mirrors the FOL test of the same name; here the leaf
    fact is monadic (nothing base-reachable from fresh but itself) and the
    WS1S engine decides the decomposed sequent."""
    answer = _prove(
        [f"ALL m. m ~= null & (first, m) : {REL}^* --> m : alloc",
         f"ALL m. m ~= null & (fresh, m) : {REL}^* --> m = fresh",
         "fresh ~= null", "m2 ~= null", f"(fresh, m2) : {WREL}^*"],
        "m2 : alloc Un {fresh}",
    )
    assert answer.verdict is Verdict.PROVED


def test_written_backbone_goal_hypothesis_decomposes():
    """The decomposition also fires inside a quantified goal's hypothesis
    (negative polarity — the invariant-preservation shape)."""
    answer = _prove(
        [f"ALL m. m ~= null & (first, m) : {REL}^* --> m : alloc",
         f"ALL m. m ~= null & (fresh, m) : {REL}^* --> m = fresh",
         "fresh ~= null"],
        f"ALL m. m ~= null & (fresh, m) : {WREL}^* --> m : alloc Un {{fresh}}",
    )
    assert answer.verdict is Verdict.PROVED


def test_written_backbone_not_unsound():
    # Nothing proves an unconstrained written closure.
    answer = _prove([], f"(x, y) : {WREL}^*")
    assert answer.verdict is not Verdict.PROVED
    # The written closure must not collapse to the base closure: the
    # decomposition is one-directional, so a positive-goal occurrence stays
    # an opaque reach set distinct from the base one.
    answer = _prove([f"(x, y) : {WREL}^*"], f"(x, y) : {REL}^*")
    assert answer.verdict is not Verdict.PROVED
    # ... and conversely the base closure must not prove the written one.
    answer = _prove([f"(x, y) : {REL}^*"], f"(x, y) : {WREL}^*")
    assert answer.verdict is not Verdict.PROVED


def test_goal_like_written_atom_matches_opaquely():
    """A positive-goal written atom is reified opaquely: it matches an
    identical assumption atom, or follows from reflexivity (``a = w`` does
    entail ``(a, w) : W^*``) — but never from unrelated reachability."""
    answer = _prove([f"(a, w) : {WREL}^*"], f"(a, w) : {WREL}^*")
    assert answer.verdict is Verdict.PROVED
    answer = _prove(["a = w"], f"(a, w) : {WREL}^*")
    assert answer.verdict is Verdict.PROVED
    answer = _prove([f"(first, w) : {WREL}^*"], f"(a, w) : {WREL}^*")
    assert answer.verdict is not Verdict.PROVED


# -- the decomposition itself --------------------------------------------------------


def test_decomposition_adds_reflexivity_and_reifies():
    seq = sequent(
        [parse(f"(first, w) : {REL}^*")], parse("w : alloc")
    )
    decomposed = decompose_reachability(seq)
    texts = [str(a) for a in decomposed.assumptions]
    assert any("reach$0" in t for t in texts)
    assert any("reach-reflexive" in ",".join(a.labels) for a in decomposed.assumptions)


def test_decomposition_leaves_reach_free_sequents_alone():
    seq = sequent([parse("x : S")], parse("x : S"))
    assert decompose_reachability(seq) is seq


def test_decomposition_skips_bound_sources():
    """A closure whose source is quantified has no ground reach set; the
    atom must survive untouched (and the fragment check later drops it)."""
    seq = sequent([parse(f"ALL u. (u, w) : {REL}^* --> u : S")], parse("w : S"))
    decomposed = decompose_reachability(seq)
    assert "reach$" not in str(decomposed.assumptions[0])
    assert "^*" in str(decomposed.assumptions[0])
