"""The WS1S decision procedure: automata operations and known (in)validities."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.mona import ws1s
from repro.mona.automata import constant, from_predicate
from repro.mona.ws1s import (
    AndW,
    Compiler,
    EmptyW,
    EqPosW,
    Exists1W,
    Exists2W,
    FalseW,
    FirstW,
    IffW,
    ImpliesW,
    InW,
    LessW,
    NotW,
    OrW,
    SetEqW,
    SingletonW,
    SubsetW,
    SuccW,
    TrueW,
    counterexample,
    forall1,
    forall2,
    is_valid,
)


# -- automata primitives -----------------------------------------------------------------


def test_constant_true_accepts_everything():
    dfa = constant(True, ("X",))
    assert dfa.accepts([])
    assert dfa.accepts([(0,), (1,)])


def test_constant_false_accepts_nothing():
    dfa = constant(False, ("X",))
    assert dfa.is_empty()


def test_complement_involution():
    dfa = constant(True, ("X",)).complement()
    assert dfa.is_empty()
    assert not dfa.complement().is_empty()


def test_product_and_or():
    t = constant(True, ("X",))
    f = constant(False, ("X",))
    assert t.product(f, "and").is_empty()
    assert not t.product(f, "or").is_empty()


def test_cylindrify_preserves_language_emptiness():
    dfa = constant(False, ("X",)).cylindrify(("X", "Y"))
    assert dfa.is_empty()


def test_minimize_reduces_states():
    # Build a deliberately redundant automaton and check minimisation shrinks it.
    dfa = from_predicate(("X",), 4, 0, {0, 1, 2, 3}, lambda s, l: (s + 1) % 4)
    minimized = dfa.minimize()
    assert minimized.num_states <= dfa.num_states
    assert minimized.num_states == 1


# -- validity of WS1S sentences ---------------------------------------------------------

VALID_SENTENCES = [
    # propositional structure
    ImpliesW(TrueW(), TrueW()),
    OrW((TrueW(), FalseW())),
    # set algebra
    ImpliesW(AndW((SubsetW("X", "Y"), SubsetW("Y", "Z"))), SubsetW("X", "Z")),
    ImpliesW(AndW((SubsetW("X", "Y"), SubsetW("Y", "X"))), SetEqW("X", "Y")),
    ImpliesW(EmptyW("X"), SubsetW("X", "Y")),
    forall1("x", ImpliesW(InW("x", "X"), InW("x", "X"))),
    # order and successor
    forall1("x", Exists1W("y", SuccW("x", "y"))),
    forall1("x", forall1("y", ImpliesW(SuccW("x", "y"), LessW("x", "y")))),
    forall1("x", NotW(LessW("x", "x"))),
    forall1("x", forall1("y", forall1("z", ImpliesW(AndW((LessW("x", "y"), LessW("y", "z"))), LessW("x", "z"))))),
    forall1("x", forall1("y", ImpliesW(EqPosW("x", "y"), EqPosW("y", "x")))),
    # induction over positions (second-order!)
    ImpliesW(
        AndW(
            (
                Exists1W("z", AndW((FirstW("z"), InW("z", "X")))),
                forall1("x", forall1("y", ImpliesW(AndW((InW("x", "X"), SuccW("x", "y"))), InW("y", "X")))),
            )
        ),
        forall1("z", InW("z", "X")),
    ),
    # there is a first position
    Exists1W("z", FirstW("z")),
    # every non-empty set has a minimal element
    ImpliesW(
        NotW(EmptyW("X")),
        Exists1W("m", AndW((InW("m", "X"), forall1("y", ImpliesW(LessW("y", "m"), NotW(InW("y", "X"))))))),
    ),
]

INVALID_SENTENCES = [
    FalseW(),
    ImpliesW(SubsetW("X", "Y"), SubsetW("Y", "X")),
    forall1("x", InW("x", "X")),
    Exists1W("y", forall1("x", LessW("x", "y"))),
    forall1("x", forall1("y", EqPosW("x", "y"))),
    SetEqW("X", "Y"),
    ImpliesW(SubsetW("X", "Y"), SetEqW("X", "Y")),
]


@pytest.mark.parametrize("formula", VALID_SENTENCES)
def test_valid_sentences(formula):
    assert is_valid(formula)


@pytest.mark.parametrize("formula", INVALID_SENTENCES)
def test_invalid_sentences(formula):
    assert not is_valid(formula)


def test_counterexample_for_invalid_formula():
    formula = ImpliesW(SubsetW("X", "Y"), SubsetW("Y", "X"))
    model = counterexample(formula)
    assert model is not None
    assert model["Y"] - model["X"]  # Y has an element outside X


def test_counterexample_none_for_valid_formula():
    assert counterexample(ImpliesW(SubsetW("X", "X"), TrueW())) is None


# -- differential testing against brute-force finite models ------------------------------


def _eval(formula, valuation, universe):
    """Brute-force evaluation of a WS1S formula over a finite prefix universe."""
    if isinstance(formula, TrueW):
        return True
    if isinstance(formula, FalseW):
        return False
    if isinstance(formula, InW):
        (element,) = valuation[formula.element]
        return element in valuation[formula.collection]
    if isinstance(formula, EqPosW):
        return valuation[formula.left] == valuation[formula.right]
    if isinstance(formula, SubsetW):
        return valuation[formula.left] <= valuation[formula.right]
    if isinstance(formula, SetEqW):
        return valuation[formula.left] == valuation[formula.right]
    if isinstance(formula, NotW):
        return not _eval(formula.arg, valuation, universe)
    if isinstance(formula, AndW):
        return all(_eval(a, valuation, universe) for a in formula.args)
    if isinstance(formula, OrW):
        return any(_eval(a, valuation, universe) for a in formula.args)
    if isinstance(formula, ImpliesW):
        return (not _eval(formula.lhs, valuation, universe)) or _eval(formula.rhs, valuation, universe)
    raise AssertionError(f"unsupported node {formula!r}")


_set_names = ["X", "Y"]


@st.composite
def monadic_formulas(draw, depth=2):
    if depth == 0:
        kind = draw(st.sampled_from(["subset", "seteq"]))
        left, right = draw(st.sampled_from(_set_names)), draw(st.sampled_from(_set_names))
        return SubsetW(left, right) if kind == "subset" else SetEqW(left, right)
    kind = draw(st.sampled_from(["atom", "not", "and", "or", "implies"]))
    if kind == "atom":
        return draw(monadic_formulas(depth=0))
    if kind == "not":
        return NotW(draw(monadic_formulas(depth=depth - 1)))
    if kind == "and":
        return AndW((draw(monadic_formulas(depth=depth - 1)), draw(monadic_formulas(depth=depth - 1))))
    if kind == "or":
        return OrW((draw(monadic_formulas(depth=depth - 1)), draw(monadic_formulas(depth=depth - 1))))
    return ImpliesW(draw(monadic_formulas(depth=depth - 1)), draw(monadic_formulas(depth=depth - 1)))


@given(monadic_formulas())
@settings(max_examples=40, deadline=None)
def test_ws1s_agrees_with_bruteforce_on_set_formulas(formula):
    """WS1S validity implies truth in every small finite model (soundness check)."""
    valid = is_valid(formula)
    universe = range(3)
    subsets = [frozenset(s) for r in range(4) for s in itertools.combinations(universe, r)]
    found_countermodel = False
    for x in subsets:
        for y in subsets:
            valuation = {"X": set(x), "Y": set(y)}
            if not _eval(formula, valuation, universe):
                found_countermodel = True
    if valid:
        assert not found_countermodel
