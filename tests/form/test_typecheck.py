"""Type checking and inference tests."""

import pytest

from repro.form import ast as F
from repro.form.parser import parse_formula
from repro.form.typecheck import TypeEnv, TypeError_, check_formula, infer_type, standard_env
from repro.form.types import (
    BOOL,
    INT,
    OBJ,
    OBJ_SET,
    TFun,
    TSet,
    TTuple,
    fun_type,
    parse_type,
)


def _env():
    env = standard_env()
    env.bind("Node", TSet(OBJ))
    env.bind("content", TSet(TTuple((OBJ, OBJ))))
    env.bind("nodes", OBJ_SET)
    env.bind("next", fun_type([OBJ], OBJ))
    env.bind("key", fun_type([OBJ], OBJ))
    env.bind("value", fun_type([OBJ], OBJ))
    env.bind("cnt", fun_type([OBJ], TSet(TTuple((OBJ, OBJ)))))
    env.bind("size", INT)
    env.bind("data", fun_type([OBJ], OBJ))
    return env


@pytest.mark.parametrize(
    "text",
    [
        "k0 ~= null",
        "size = card nodes",
        "ALL x. x : Node --> x..next : Node | x..next = null",
        "ALL x. x : Node & x ~= null --> x..cnt = {(x..key, x..value)} Un x..next..cnt",
        "(k0, v0) : content",
        "content = old content Un {(k0, v0)}",
        "nodes = {n. n..next = null}",
        "size + 1 > 0",
        "EX v. (k0, v) : content",
        "ALL v. ((k0, v) : content) = ((k0, v) : cnt current)",
    ],
)
def test_well_typed_formulas(text):
    annotated = check_formula(parse_formula(text), _env())
    assert annotated is not None


@pytest.mark.parametrize(
    "text, expected",
    [
        ("size", INT),
        ("size + 1", INT),
        ("card nodes", INT),
        ("nodes", OBJ_SET),
        ("nodes Un {x}", OBJ_SET),
        ("x..next", OBJ),
        ("x : nodes", BOOL),
        ("(x, y)", TTuple((OBJ, OBJ))),
        ("% x. x..next", TFun(OBJ, OBJ)),
        ("{n. n..next = null}", OBJ_SET),
    ],
)
def test_inferred_types(text, expected):
    assert infer_type(parse_formula(text), _env()) == expected


def test_binder_annotation_defaults_to_obj():
    annotated = check_formula(parse_formula("ALL x. x : nodes"), _env())
    assert annotated.params[0][1] == OBJ


def test_binder_annotation_infers_int():
    env = _env()
    annotated = check_formula(parse_formula("ALL i. i < size"), env)
    assert annotated.params[0][1] == INT


def test_minus_resolves_to_set_difference():
    env = _env()
    annotated = check_formula(parse_formula("nodes - {x} = nodes"), env)
    # The overloaded '-' must become set difference when operands are sets.
    assert "setdiff" in repr(annotated) or F.is_app_of(annotated.lhs, "setdiff")


def test_minus_stays_arithmetic_for_integers():
    env = _env()
    typ = infer_type(parse_formula("size - 1"), env)
    assert typ == INT


@pytest.mark.parametrize(
    "text",
    [
        "size = nodes",            # int vs set
        "card size",               # card of a non-set
        "size Un nodes",           # union of an int
        "(x : nodes) + 1",         # bool used as int
    ],
)
def test_ill_typed_formulas(text):
    with pytest.raises(TypeError_):
        check_formula(parse_formula(text), _env())


@pytest.mark.parametrize(
    "text, expected",
    [
        ("bool", BOOL),
        ("int", INT),
        ("obj", OBJ),
        ("objset", OBJ_SET),
        ("obj set", OBJ_SET),
        ("(obj * obj) set", TSet(TTuple((OBJ, OBJ)))),
        ("obj => obj", TFun(OBJ, OBJ)),
        ("obj => obj => bool", TFun(OBJ, TFun(OBJ, BOOL))),
        ("obj => (obj * obj) set", TFun(OBJ, TSet(TTuple((OBJ, OBJ))))),
        ("(int * obj) set", TSet(TTuple((INT, OBJ)))),
    ],
)
def test_parse_type(text, expected):
    assert parse_type(text) == expected


def test_unknown_variables_default_to_obj():
    env = TypeEnv()
    assert infer_type(parse_formula("mystery"), env) == OBJ


def test_unknown_variables_rejected_when_strict():
    env = TypeEnv(default_obj=False)
    with pytest.raises(TypeError_):
        infer_type(parse_formula("mystery = null"), env)
