"""Property tests of the hash-consing layer (``repro.form.intern``).

Interning is a pure performance device: the canonical term must be
observationally identical to the raw one (printer output, sequent digests,
prover verdicts), and banks must stay per-run — the verify daemon keeps
prover processes alive across requests, so a shared bank would leak terms
between requests.
"""

import pytest

from repro.form import ast as F
from repro.form.intern import TermBank
from repro.form.parser import parse_formula as parse
from repro.form.printer import to_str
from repro.form.rewrite import nnf, simplify
from repro.smt.prover import SmtProver
from repro.vcgen.sequent import sequent

FORMULAS = [
    "p & q --> r",
    "ALL x. x : S --> x ~= null",
    "a = b & b = c --> a = c",
    "x : A Un (B Int C)",
    "~(i < n) | arrayState a i = v",
    "ALL x. ALL y. next x = y --> rtrancl_pt (% a b. next a = b) x y",
    "(fieldWrite next n1 root) n2 = q & n1 ~= n2",
    "EX x. x : content & x ~= e",
    "card S <= 1 & S ~= {}",
    "size = 0 --> size + 1 = 1",
]


@pytest.mark.parametrize("text", FORMULAS)
def test_intern_is_canonical_and_idempotent(text):
    bank = TermBank()
    term = parse(text)
    copy = parse(text)
    interned = bank.intern(term)
    assert bank.intern(copy) is interned
    assert bank.intern(interned) is interned
    assert bank.is_interned(interned)


@pytest.mark.parametrize("text", FORMULAS)
def test_interned_terms_print_identically(text):
    bank = TermBank()
    term = parse(text)
    assert to_str(bank.intern(term)) == to_str(term)
    assert bank.printed(bank.intern(term)) == to_str(term)


@pytest.mark.parametrize("text", FORMULAS)
def test_bank_normalisation_matches_plain_pipeline(text):
    bank = TermBank()
    term = parse(text)
    assert to_str(bank.normalised(term)) == to_str(simplify(nnf(term)))


def test_sequent_digests_are_interning_invariant():
    bank = TermBank()
    assumptions = [parse(t) for t in FORMULAS[:4]]
    goal = parse("a = c")
    raw = sequent(assumptions, goal)
    interned = sequent([bank.intern(a) for a in assumptions], bank.intern(goal))
    assert raw.digest() == interned.digest()


VERDICT_CASES = [
    (["a = b", "b = c"], "a = c"),
    (["ALL x. x : S --> x ~= null", "a : S"], "a ~= null"),
    (["x : A Int B"], "x : A"),
    (["p", "p --> q"], "q"),
    (["x < y", "y < z"], "x < z"),
    (["p"], "q"),  # invalid: must stay unproved either way
    (["a : S"], "a ~= null"),  # invalid
]


@pytest.mark.parametrize("assumptions,goal", VERDICT_CASES)
def test_interning_never_changes_verdicts(assumptions, goal):
    seq = sequent([parse(a) for a in assumptions], parse(goal))
    on = SmtProver(timeout=4.0, interning=True).prove(seq)
    off = SmtProver(timeout=4.0, interning=False).prove(seq)
    assert on.verdict == off.verdict


def test_each_attempt_gets_a_fresh_bank(monkeypatch):
    """Two requests through the same prover object never share a TermBank
    (the daemon keeps prover processes alive across requests)."""
    import repro.smt.prover as smt_prover

    created = []

    class RecordingBank(TermBank):
        def __init__(self):
            super().__init__()
            created.append(self)

    monkeypatch.setattr(smt_prover, "TermBank", RecordingBank)
    prover = SmtProver(timeout=4.0)
    seq1 = sequent([parse("a = b"), parse("b = c")], parse("a = c"))
    seq2 = sequent([parse("p"), parse("p --> q")], parse("q"))
    assert prover.prove(seq1).proved
    assert prover.prove(seq2).proved
    assert len(created) == 2
    assert created[0] is not created[1]


def test_fol_terms_intern_to_pointer_equal_nodes():
    bank = TermBank()
    a = bank.fapp("f", (bank.fapp("a"), bank.fvar("X")))
    b = bank.fapp("f", (bank.fapp("a"), bank.fvar("X")))
    assert a is b
    lit1 = bank.literal(True, "p", (a,))
    lit2 = bank.literal(True, "p", (b,))
    assert lit1 is lit2
