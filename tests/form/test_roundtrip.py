"""Parser -> printer -> parser roundtrip on the suite's specification formulas.

The printer documents itself as the inverse of the parser; this property is
load-bearing for the dispatch subsystem, whose sequent digests and cache
keys are computed over printed formulas.
"""

import pytest

from repro import suite
from repro.form.parser import parse_formula
from repro.form.printer import to_str
from repro.java.resolver import parse_program


def _suite_formulas():
    """Every invariant, precondition and postcondition of the bundled suite."""
    formulas = []
    for name in suite.names():
        program = parse_program(suite.source(name))
        for inv_name, formula in program.invariants:
            formulas.append((f"{name}:inv:{inv_name}", formula))
        for (owner, method_name), info in program.methods.items():
            contract = info.contract
            formulas.append(
                (f"{owner}.{method_name}:requires", program.parse(contract.requires_text))
            )
            formulas.append(
                (f"{owner}.{method_name}:ensures", program.parse(contract.ensures_text))
            )
    return formulas


_FORMULAS = _suite_formulas()


@pytest.mark.parametrize(
    "label, formula", _FORMULAS, ids=[label for label, _ in _FORMULAS]
)
def test_print_parse_roundtrip_is_identity(label, formula):
    printed = to_str(formula)
    reparsed = parse_formula(printed)
    assert reparsed == formula, f"{label}: {printed!r} reparsed as {to_str(reparsed)!r}"


def test_roundtrip_covers_every_structure():
    covered = {label.split(":")[0].split(".")[0] for label, _ in _FORMULAS}
    assert set(suite.names()) <= covered


@pytest.mark.parametrize(
    "text",
    [
        "x ~= null & x ~: content",
        "content = old content Un {x}",
        "size = card content",
        "ALL i v. (i, v) : content --> (0 <= i & i < size)",
        "toVisit subseteq content",
        "{x. x ~= null & rtrancl_pt (% v w. v..next = w) first x} = content",
        "tree [left, right]",
        "arrayLength (root..children) = 8",
        "(k0, result) : content",
        "card content = card (old content) + 1",
    ],
)
def test_roundtrip_on_paper_style_formulas(text):
    formula = parse_formula(text)
    assert parse_formula(to_str(formula)) == formula
