"""Substitution, free variables, beta reduction and alpha equivalence."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.form import ast as F
from repro.form.parser import parse_formula
from repro.form.printer import to_str
from repro.form.subst import alpha_equal, beta_reduce, free_vars, fresh_name, substitute


@pytest.mark.parametrize(
    "text, expected",
    [
        ("x = y", {"x", "y"}),
        ("ALL x. x = y", {"y"}),
        ("EX x y. x = y", set()),
        ("% x. x..next = y", {"y", "next"}),
        ("{x. x : S}", {"S"}),
        ("x : A Un B", {"x", "A", "B"}),
        ("card content = size", {"content", "size"}),
        ("null = x", {"x"}),  # builtins are not free variables
        ("old content = content", {"content"}),
        ("(ALL x. x : S) & x : T", {"x", "S", "T"}),
    ],
)
def test_free_vars(text, expected):
    assert set(free_vars(parse_formula(text))) == expected


def test_substitute_simple():
    term = parse_formula("x = y")
    result = substitute(term, {"x": F.Var("z")})
    assert to_str(result) == "z = y"


def test_substitute_does_not_touch_bound():
    term = parse_formula("ALL x. x = y")
    result = substitute(term, {"x": F.Var("z")})
    assert to_str(result) == to_str(term)


def test_substitute_avoids_capture():
    # Substituting y := x under a binder for x must rename the binder.
    term = parse_formula("ALL x. x = y")
    result = substitute(term, {"y": F.Var("x")})
    assert isinstance(result, F.Quant)
    bound_name = result.params[0][0]
    assert bound_name != "x"
    assert to_str(result.body) == f"{bound_name} = x"


def test_substitute_simultaneous():
    term = parse_formula("x = y")
    result = substitute(term, {"x": F.Var("y"), "y": F.Var("x")})
    assert to_str(result) == "y = x"


def test_beta_reduce_simple():
    term = parse_formula("(% x. x..next) a")
    assert to_str(beta_reduce(term)) == "next a"


def test_beta_reduce_two_arguments():
    term = parse_formula("(% x y. x = y) a b")
    assert to_str(beta_reduce(term)) == "a = b"


def test_beta_reduce_under_connectives():
    term = parse_formula("p & (% x. x : S) a")
    assert to_str(beta_reduce(term)) == "p & a : S"


def test_beta_reduce_partial_application():
    term = parse_formula("(% x y. x = y) a")
    reduced = beta_reduce(term)
    assert isinstance(reduced, F.Lambda)
    assert to_str(beta_reduce(F.App(reduced, (F.Var("b"),)))) == "a = b"


def test_alpha_equal_binders():
    t1 = parse_formula("ALL x. x : S")
    t2 = parse_formula("ALL y. y : S")
    assert alpha_equal(t1, t2)


def test_alpha_not_equal_different_structure():
    t1 = parse_formula("ALL x. x : S")
    t2 = parse_formula("EX x. x : S")
    assert not alpha_equal(t1, t2)


def test_alpha_distinguishes_free_variables():
    t1 = parse_formula("x : S")
    t2 = parse_formula("y : S")
    assert not alpha_equal(t1, t2)


def test_fresh_name_avoids_collisions():
    name = fresh_name("x", {"x", "x_1", "x_2"})
    assert name not in {"x", "x_1", "x_2"}


# -- property-based tests ------------------------------------------------------

_names = st.sampled_from(["a", "b", "c", "d"])


@st.composite
def simple_formulas(draw, depth=2):
    """A small random formula generator over equality atoms and connectives."""
    if depth == 0:
        left, right = draw(_names), draw(_names)
        return F.Eq(F.Var(left), F.Var(right))
    kind = draw(st.sampled_from(["atom", "not", "and", "or", "implies", "forall"]))
    if kind == "atom":
        return draw(simple_formulas(depth=0))
    if kind == "not":
        return F.Not(draw(simple_formulas(depth=depth - 1)))
    if kind in ("and", "or"):
        args = (draw(simple_formulas(depth=depth - 1)), draw(simple_formulas(depth=depth - 1)))
        return F.And(args) if kind == "and" else F.Or(args)
    if kind == "implies":
        return F.Implies(
            draw(simple_formulas(depth=depth - 1)), draw(simple_formulas(depth=depth - 1))
        )
    var = draw(_names)
    return F.Quant("ALL", ((var, None),), draw(simple_formulas(depth=depth - 1)))


@given(simple_formulas())
@settings(max_examples=60, deadline=None)
def test_print_parse_round_trip_property(term):
    """to_str/parse is a round trip on randomly generated formulas."""
    printed = to_str(term)
    reparsed = parse_formula(printed)
    assert to_str(reparsed) == printed


@given(simple_formulas())
@settings(max_examples=60, deadline=None)
def test_substitution_of_fresh_variable_is_invertible(term):
    """Renaming a free variable to a fresh name and back is the identity."""
    original = to_str(term)
    for name in free_vars(term):
        fresh = fresh_name(name + "_fresh", free_vars(term))
        renamed = substitute(term, {name: F.Var(fresh)})
        restored = substitute(renamed, {fresh: F.Var(name)})
        assert alpha_equal(restored, term), (original, to_str(restored))


@given(simple_formulas())
@settings(max_examples=60, deadline=None)
def test_substitution_removes_the_variable(term):
    """After substituting x := <fresh constant>, x is no longer free."""
    for name in free_vars(term):
        replaced = substitute(term, {name: F.Var("$constant")})
        assert name not in free_vars(replaced)
