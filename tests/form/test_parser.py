"""Parser and printer tests: round-tripping the paper's specification formulas."""

import pytest

from repro.form import ast as F
from repro.form.parser import ParseError, parse_formula
from repro.form.printer import to_str

# Formulas drawn from the paper's figures (2-6) and from the bundled suite.
ROUND_TRIP_FORMULAS = [
    "k0 ~= null & v0 ~= null",
    "content = old content - {(k0, result)} Un {(k0, v0)}",
    "(result = null --> ~(EX v. (k0, v) : old content))",
    "(result ~= null --> (k0, result) : old content)",
    "ALL x. x : Node & x : alloc & x ~= null --> x..cnt = {(x..key, x..value)} Un x..next..cnt",
    "ALL x. x : Node & x : alloc & x = null --> x..cnt = {}",
    "edge = (% x y. (x : Node & y = x..next) | (x : AssocList & y = x..first))",
    "ALL x1 x2 y. y ~= null & edge x1 y & edge x2 y --> x1 = x2",
    "nodes = {n. n ~= null & (root, n) : {(u, v). u..next = v}^*}",
    "content = {x. EX n. x = n..data & n : nodes}",
    "size = card content",
    "tree [List.next]",
    "ALL v. ((k0, v) : content) = ((k0, v) : current..cnt)",
    "x ~: content",
    "content = old content Un {x}",
    "A subseteq B & B subseteq C --> A subseteq C",
    "x : A Un B",
    "x : A Int B - C",
    "size + 1 = card content1",
    "0 <= i & i < count",
    "arrayRead arrayState elems i = v",
    "fieldWrite next n1 root = q",
    "first ~= null --> content = cnt first",
    "ALL n. n : nodes --> n..next : nodes | n..next = null",
    "EX n. n : nodes & x = n..data",
    "~(x = y) | x = y",
    "card A >= 1",
    "a < b & b <= c --> a < c",
    "p & q | r",
    "p --> q --> r",
    "p <-> q",
    "(x, y) : treeEdges",
    "hsize > 0 --> maxElem = arrayRead arrayState heap 0",
    "result = hashOf k & 0 <= result & result < tcapacity",
    "(u, v) : {(x, y). y = x..next}^+",
    "-3 < x",
    "f (g x) (h y z) = w",
]


@pytest.mark.parametrize("text", ROUND_TRIP_FORMULAS)
def test_round_trip(text):
    """Parsing, printing and re-parsing reaches a fixed point."""
    term = parse_formula(text)
    printed = to_str(term)
    reparsed = parse_formula(printed)
    assert to_str(reparsed) == printed


@pytest.mark.parametrize(
    "text, expected_type",
    [
        ("ALL x. x : S", F.Quant),
        ("EX x. x : S", F.Quant),
        ("% x y. x = y", F.Lambda),
        ("{x. x : S}", F.SetCompr),
        ("{(x, y). x = y}", F.SetCompr),
        ("{a, b, c}", F.App),
        ("{}", F.Var),
        ("x & y", F.And),
        ("x | y", F.Or),
        ("~x", F.Not),
        ("x --> y", F.Implies),
        ("x <-> y", F.Iff),
        ("x = y", F.Eq),
        ("old content", F.Old),
        ("(a, b)", F.TupleTerm),
        ("42", F.IntLit),
        ("True", F.BoolLit),
    ],
)
def test_node_kinds(text, expected_type):
    assert isinstance(parse_formula(text), expected_type)


def test_field_access_is_application():
    term = parse_formula("x..next")
    assert isinstance(term, F.App)
    assert term.func == F.Var("next")
    assert term.args == (F.Var("x"),)


def test_chained_field_access():
    term = parse_formula("x..next..cnt")
    assert isinstance(term, F.App)
    assert term.func == F.Var("cnt")
    inner = term.args[0]
    assert isinstance(inner, F.App) and inner.func == F.Var("next")


def test_membership_negation():
    term = parse_formula("x ~: S")
    assert isinstance(term, F.Not)
    assert F.is_app_of(term.arg, "elem")


def test_set_difference_parses_as_minus():
    term = parse_formula("A - B")
    assert F.is_app_of(term, "minus")


def test_rtrancl_postfix():
    term = parse_formula("R^*")
    assert F.is_app_of(term, "rtrancl")


def test_trancl_postfix():
    term = parse_formula("R^+")
    assert F.is_app_of(term, "trancl")


def test_tree_declaration():
    term = parse_formula("tree [next]")
    assert F.is_app_of(term, "tree")


def test_tree_with_two_fields():
    term = parse_formula("tree [left, right]")
    assert F.is_app_of(term, "tree2")


def test_unicode_notation_accepted():
    ascii_term = parse_formula("ALL x. x : S --> x ~= null")
    unicode_term = parse_formula("∀ x. x ∈ S → x ≠ null")
    assert to_str(ascii_term) == to_str(unicode_term)


def test_implication_is_right_associative():
    term = parse_formula("a --> b --> c")
    assert isinstance(term, F.Implies)
    assert isinstance(term.rhs, F.Implies)


def test_and_binds_tighter_than_or():
    term = parse_formula("a & b | c")
    assert isinstance(term, F.Or)


def test_comparison_binds_tighter_than_and():
    term = parse_formula("x = y & z = w")
    assert isinstance(term, F.And)
    assert all(isinstance(arg, F.Eq) for arg in term.args)


def test_quantifier_scopes_to_the_right():
    term = parse_formula("ALL x. x : S & x ~= null")
    assert isinstance(term, F.Quant)
    assert isinstance(term.body, F.And)


def test_multi_variable_binder():
    term = parse_formula("ALL x y z. x = y --> y = z --> x = z")
    assert isinstance(term, F.Quant)
    assert [name for name, _ in term.params] == ["x", "y", "z"]


def test_typed_binder():
    term = parse_formula("ALL (x::int). 0 <= x | x < 0")
    assert isinstance(term, F.Quant)
    from repro.form.types import INT

    assert term.params[0][1] == INT


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "x &",
        "ALL . x",
        "x : ",
        "{x. }",
        "x..",
        "((x)",
        "x ~~ y",
    ],
)
def test_parse_errors(bad):
    with pytest.raises(ParseError):
        parse_formula(bad)


def test_finite_set_literal_prints_back():
    term = parse_formula("{a, b}")
    assert to_str(term) == "{a, b}"


def test_qualified_names_survive():
    term = parse_formula("tree [List.next]")
    assert to_str(parse_formula(to_str(term))) == to_str(term)
