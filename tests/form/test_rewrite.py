"""Rewriting passes: simplification, NNF, set expansion, field-write expansion."""

import pytest

from repro.form import ast as F
from repro.form.parser import parse_formula as parse
from repro.form.printer import to_str
from repro.form.rewrite import (
    eliminate_ite,
    expand_field_writes,
    expand_set_equalities,
    expand_set_literals,
    nnf,
    simplify,
    unfold_definitions,
)


@pytest.mark.parametrize(
    "before, after",
    [
        ("x = x", "True"),
        ("True & p", "p"),
        ("False & p", "False"),
        ("False | p", "p"),
        ("True | p", "True"),
        ("~~p", "p"),
        ("p --> True", "True"),
        ("1 + 2 = 3", "True"),
        ("2 < 1", "False"),
        ("x : {}", "False"),
        ("A Un {} = A", "True"),
        ("size + 0 = size", "True"),
        ("p & p & True", "p & p"),
    ],
)
def test_simplify(before, after):
    assert to_str(simplify(parse(before))) == to_str(parse(after))


@pytest.mark.parametrize(
    "before",
    [
        "~(p & q)",
        "~(p | q)",
        "~(p --> q)",
        "~(ALL x. x : S)",
        "~(EX x. x : S)",
        "p <-> q",
        "~(p <-> q)",
    ],
)
def test_nnf_removes_negations_of_compounds(before):
    result = nnf(parse(before))
    # In NNF, negation only applies to atoms.
    for sub in F.subterms(result):
        if isinstance(sub, F.Not):
            assert not isinstance(
                sub.arg, (F.And, F.Or, F.Implies, F.Iff, F.Quant, F.Not)
            )


def test_nnf_pushes_negation_through_quantifier():
    result = nnf(parse("~(ALL x. x : S)"))
    assert isinstance(result, F.Quant) and result.kind == "EX"


@pytest.mark.parametrize(
    "before, after",
    [
        ("x : A Un B", "x : A | x : B"),
        ("x : A Int B", "x : A & x : B"),
        ("x : A - B", "x : A & x ~: B"),
        ("x : {a, b}", "x = a | x = b | False"),
        ("x : {y. y ~= null}", "x ~= null"),
        ("x : (A Un B) Int C", "(x : A | x : B) & x : C"),
    ],
)
def test_expand_set_literals(before, after):
    assert to_str(simplify(expand_set_literals(parse(before)))) == to_str(
        simplify(parse(after))
    )


def test_expand_subseteq():
    result = expand_set_literals(parse("A subseteq B"))
    assert isinstance(result, F.Quant)


def test_expand_set_equalities():
    result = expand_set_equalities(parse("A = B Un {x}"), {"A", "B"})
    assert isinstance(result, F.Quant)
    assert isinstance(result.body, F.Iff)


def test_expand_set_equalities_ignores_object_equalities():
    term = parse("x = y")
    assert expand_set_equalities(term, {"A"}) == term


def test_expand_field_writes_same_object():
    result = expand_field_writes(parse("(fieldWrite next n root) n = q"))
    assert to_str(result) == "root = q"


def test_expand_field_writes_other_object_introduces_ite():
    result = expand_field_writes(parse("(fieldWrite next n root) m = q"))
    assert any(isinstance(sub, F.Ite) for sub in F.subterms(result))


def test_expand_array_writes():
    result = expand_field_writes(
        parse("(arrayWrite arrayState a i v) a i = v")
    )
    assert to_str(simplify(result)) == "True"


def test_eliminate_ite_boolean_position():
    term = parse("x = y & z = w")
    ite = F.Ite(parse("c"), parse("p"), parse("q"))
    result = eliminate_ite(F.And((ite, term)))
    assert not any(isinstance(sub, F.Ite) for sub in F.subterms(result))


def test_eliminate_ite_term_position():
    term = F.Eq(F.Ite(parse("c"), F.Var("a"), F.Var("b")), F.Var("q"))
    result = eliminate_ite(term)
    assert not any(isinstance(sub, F.Ite) for sub in F.subterms(result))
    # The case split must mention both branches.
    text = to_str(result)
    assert "a = q" in text and "b = q" in text


def test_unfold_definitions():
    definitions = {"content": parse("cnt first")}
    result = unfold_definitions(parse("content = old content Un {x}"), definitions)
    assert "content" not in to_str(result).split() or "cnt" in to_str(result)


def test_unfold_definitions_chain():
    definitions = {"a": parse("b Un {x}"), "b": parse("c")}
    result = unfold_definitions(parse("y : a"), definitions)
    assert to_str(result) == "y : c Un {x}"


def test_quantifier_over_boolean_constant_simplifies():
    assert to_str(simplify(F.Quant("ALL", (("x", None),), F.TRUE))) == "True"
