"""The ``python -m repro.lint`` command line: exit codes, severities, output."""

from repro.lint import main


CLEAN = """
class Box {
    private static Object item;
    /*: public static ghost specvar full :: "bool" = "False"; */
    public static void put(Object x)
    /*: requires "x ~= null"
        modifies full
        ensures "full" */
    {
        item = x;
        //: full := "True";
    }
}
"""

BROKEN = CLEAN.replace('ensures "full"', 'ensures "ful"')

WARNING_ONLY = CLEAN.replace(
    '//: full := "True";',
    'return;\n        //: full := "True";',
)


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


def test_clean_file_exits_zero(tmp_path, capsys):
    assert main([_write(tmp_path, "clean.java", CLEAN)]) == 0
    out = capsys.readouterr().out
    assert "1 file(s) linted: 0 error(s)" in out


def test_error_file_exits_one_and_prints_finding(tmp_path, capsys):
    path = _write(tmp_path, "broken.java", BROKEN)
    assert main([path]) == 1
    out = capsys.readouterr().out
    assert "error[SPEC01]" in out
    assert "did you mean 'full'?" in out
    assert out.splitlines()[0].startswith(f"{path}:")


def test_warnings_fail_only_in_strict_mode(tmp_path):
    path = _write(tmp_path, "warn.java", WARNING_ONLY)
    assert main([path]) == 0
    assert main(["--strict", path]) == 1


def test_min_severity_filters_output(tmp_path, capsys):
    path = _write(tmp_path, "warn.java", WARNING_ONLY)
    main(["--min-severity", "error", path])
    out = capsys.readouterr().out
    assert "CFG01" not in out
    # The summary still counts the hidden warning.
    assert "1 warning(s)" in out


def test_missing_file_exits_two(tmp_path, capsys):
    assert main([str(tmp_path / "absent.java")]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_no_inputs_exits_two(capsys):
    assert main([]) == 2
    assert "no input files" in capsys.readouterr().err


def test_multiple_files_aggregate(tmp_path, capsys):
    clean = _write(tmp_path, "clean.java", CLEAN)
    broken = _write(tmp_path, "broken.java", BROKEN)
    assert main([clean, broken]) == 1
    out = capsys.readouterr().out
    assert "2 file(s) linted: 1 error(s)" in out
