"""Static discharge: trivial truth, the available-assumes analysis, and the
sequent-level :class:`StaticDischarger` pre-pass."""

from repro.form import ast as F
from repro.form.parser import parse_formula as parse
from repro.analysis.cfg import build_cfg, run_dataflow
from repro.analysis.discharge import (
    UNIVERSE,
    AvailableAssumes,
    StaticDischarger,
    find_dominated_asserts,
    trivially_false,
    trivially_true,
)
from repro.gcl.commands import Assert, Assign, Assume, Choice, Havoc, seq
from repro.vcgen.sequent import sequent


# -- trivial truth -----------------------------------------------------------------


def test_trivially_true_shapes():
    for text in ["True", "x = x", "True & x = x", "p | True",
                 "q --> True", "False --> p", "ALL x. x = x"]:
        assert trivially_true(parse(text)), text


def test_not_trivially_true():
    for text in ["p", "x = y", "p & q", "p | q", "p --> q", "~p"]:
        assert not trivially_true(parse(text)), text


def test_trivially_false_shapes():
    for text in ["False", "~True", "p & False", "False | False"]:
        assert trivially_false(parse(text)), text
    assert not trivially_false(parse("p & q"))
    assert not trivially_false(parse("p | True"))


# -- available assumes -------------------------------------------------------------


def test_assume_becomes_available_and_assign_kills():
    p = parse("x = null")
    fact = AvailableAssumes.transfer_command(Assume(p), frozenset())
    assert p in fact
    fact = AvailableAssumes.transfer_command(Assign("x", parse("y")), fact)
    assert p not in fact


def test_havoc_kills_only_touched_formulas():
    p, q = parse("x = null"), parse("y = null")
    fact = frozenset({p, q})
    fact = AvailableAssumes.transfer_command(Havoc(("x",)), fact)
    assert fact == frozenset({q})


def test_assume_false_is_top():
    fact = AvailableAssumes.transfer_command(Assume(F.FALSE), frozenset())
    assert fact is UNIVERSE
    # Top absorbs any further command.
    assert AvailableAssumes.transfer_command(Assign("x", parse("y")), fact) is UNIVERSE


def test_join_is_intersection_ignoring_dead_paths():
    analysis = AvailableAssumes()
    p, q = parse("p"), parse("q")
    joined = analysis.join([frozenset({p, q}), frozenset({p})])
    assert joined == frozenset({p})
    assert analysis.join([UNIVERSE, frozenset({p})]) == frozenset({p})
    assert analysis.join([UNIVERSE, UNIVERSE]) is UNIVERSE


def test_dominated_assert_found():
    p = parse("x ~= null")
    command = seq(Assume(p), Assert(p, label="null-check"))
    dominated = find_dominated_asserts(command)
    assert [d.reason for d in dominated] == ["assumption"]


def test_intervening_assign_blocks_domination():
    p = parse("x ~= null")
    command = seq(Assume(p), Assign("x", parse("y")), Assert(p))
    assert find_dominated_asserts(command) == []


def test_must_analysis_needs_both_branches():
    p = parse("p")
    one_side = seq(
        Choice(Assume(p), Assume(parse("q"))),
        Assert(p),
    )
    assert find_dominated_asserts(one_side) == []
    both_sides = seq(
        Choice(Assume(p), seq(Assume(parse("q")), Assume(p))),
        Assert(p),
    )
    assert [d.reason for d in find_dominated_asserts(both_sides)] == ["assumption"]


def test_trivial_assert_reported_with_trivial_reason():
    command = seq(Assume(parse("p")), Assert(parse("x = x")))
    assert [d.reason for d in find_dominated_asserts(command)] == ["trivial"]


def test_assert_then_assume_makes_formula_available():
    p = parse("p")
    command = seq(Assert(p), Assert(p))
    # The second assert is dominated by the first (assert-then-assume).
    dominated = find_dominated_asserts(command)
    assert len(dominated) == 1 and dominated[0].reason == "assumption"


def test_assert_after_cut_is_vacuous():
    command = seq(Assume(F.FALSE), Assert(parse("p")))
    assert [d.reason for d in find_dominated_asserts(command)] == ["unreachable"]


def test_cfg_can_be_shared():
    p = parse("p")
    command = seq(Assume(p), Assert(p))
    cfg = build_cfg(command)
    assert find_dominated_asserts(command, cfg) == find_dominated_asserts(command)


def test_run_dataflow_produces_exit_fact():
    p = parse("p")
    cfg = build_cfg(seq(Assume(p), Assign("z", parse("1"))))
    result = run_dataflow(cfg, AvailableAssumes())
    assert p in result.outputs[cfg.exit]


# -- the sequent-level pre-pass ----------------------------------------------------


def _seq(assumptions, goal):
    return sequent([parse(a) for a in assumptions], parse(goal))


def test_discharger_trivial_goal():
    assert StaticDischarger._classify(_seq(["p"], "x = x")) == "trivial"


def test_discharger_verbatim_assumption():
    assert StaticDischarger._classify(_seq(["p", "q"], "q")) == "assumption"


def test_discharger_symmetric_equality():
    assert StaticDischarger._classify(_seq(["a = b"], "b = a")) == "symmetric-equality"


def test_discharger_conjunct_of_assumption():
    assert StaticDischarger._classify(_seq(["p & q"], "q")) == "conjunct"


def test_discharger_contradictory_assumptions():
    assert StaticDischarger._classify(_seq(["False"], "p")) == "contradiction"
    assert StaticDischarger._classify(_seq(["p", "~p"], "q")) == "contradiction"


def test_discharger_gives_up_when_a_prover_is_needed():
    for assumptions, goal in [
        ([], "p"),
        (["p"], "q"),
        (["p | q"], "p"),
        (["a = b", "b = c"], "a = c"),
        (["~p", "q"], "r"),  # no complementary pair, ~p alone is not false
    ]:
        assert StaticDischarger._classify(_seq(assumptions, goal)) is None, goal


def test_discharger_counts_by_reason():
    discharger = StaticDischarger()
    assert discharger.check(_seq([], "x = x")) == "trivial"
    assert discharger.check(_seq(["a = b"], "b = a")) == "symmetric-equality"
    assert discharger.check(_seq([], "p")) is None
    assert discharger.checked == 3
    assert discharger.discharged == 2
    assert discharger.by_reason == {"trivial": 1, "symmetric-equality": 1}
