"""Frame/modifies checking: write effects versus declared frames."""

from repro.form.parser import parse_formula as parse
from repro.analysis.frames import check_frames, collect_writes, method_effects
from repro.gcl.commands import Assign, Choice, Havoc, If, Loop, Seq, seq
from repro.java.resolver import parse_program


TWO_CLASSES = """
public /*: claimedby Stack */ class Cell {
    public Object data;
    public Cell below;
}
class Stack {
    private static Cell top;
    public static int version;
    /*: public static ghost specvar content :: "objset" = "{}";
        private static ghost specvar depth :: "int" = "0";
        invariant TopInv: "top ~= null --> top..data : content";
    */
    public static void push(Object x)
    /*: requires "x ~= null"
        modifies content
        ensures "content = old content Un {x}" */
    {
        Cell c = new Cell();
        c.data = x;
        c.below = top;
        top = c;
        //: content := "content Un {x}";
        //: depth := "depth + 1";
    }
}
class Other {
    public static Object scratch;
}
"""


def test_collect_writes_tracks_first_lines():
    command = seq(
        Assign("x", parse("1"), line=3),
        Assign("x", parse("2"), line=7),
        Havoc(("y", "z"), line=5),
    )
    writes = collect_writes(command)
    assert writes == {"x": 3, "y": 5, "z": 5}


def test_collect_writes_covers_every_command_form():
    command = Seq((
        If(parse("p"), Assign("a", parse("1")), Assign("b", parse("2"))),
        Choice(Assign("c", parse("3")), Havoc(("d",))),
        Loop((), parse("p"), Assign("e", parse("4"))),
    ))
    assert set(collect_writes(command)) == {"a", "b", "c", "d", "e"}


def test_method_effects_cover_heap_and_ghost_writes():
    program = parse_program(TWO_CLASSES)
    effects = method_effects(program, "Stack", "push")
    # Field stores surface as writes to the field functions; the ghost
    # assignments as writes to the specvars; alloc from `new`.
    assert {"data", "below", "top", "content", "depth", "alloc"} <= set(effects.writes)


def test_declared_and_owned_writes_are_licensed():
    program = parse_program(TWO_CLASSES)
    # push writes content (declared), depth (private ghost), top (private
    # field), data/below (fields of the claimed class): all licensed.
    assert check_frames(program) == []


def test_frame01_public_specvar_not_declared():
    source = TWO_CLASSES.replace("modifies content\n", "")
    program = parse_program(source)
    findings = check_frames(program)
    assert [d.rule for d in findings] == ["FRAME01"]
    assert "content" in findings[0].message
    assert findings[0].method_name == "push"


def test_frame01_public_field_not_declared():
    source = TWO_CLASSES.replace("top = c;", "top = c;\n        version = version + 1;")
    program = parse_program(source)
    findings = check_frames(program)
    assert [d.rule for d in findings] == ["FRAME01"]
    assert "version" in findings[0].message


def test_frame02_unrelated_class_field():
    source = TWO_CLASSES.replace("top = c;", "top = c;\n        Other.scratch = x;")
    program = parse_program(source)
    findings = check_frames(program)
    assert [d.rule for d in findings] == ["FRAME02"]
    assert findings[0].severity.name == "WARNING"
    assert "scratch" in findings[0].message


def test_qualified_modifies_licenses_field():
    source = TWO_CLASSES.replace("modifies content", "modifies content, Stack.version")
    source = source.replace("top = c;", "top = c;\n        version = version + 1;")
    program = parse_program(source)
    assert check_frames(program) == []


def test_bodyless_methods_are_skipped():
    program = parse_program(TWO_CLASSES)
    assert method_effects(program, "Stack", "push") is not None
    # Other has no methods at all; check_frames simply has nothing to say.
    assert all(d.class_name == "Stack" for d in check_frames(program))
