"""Mutation tests pinning lint precision on the bundled suite.

Each corruption of a pristine suite source must trigger exactly the intended
diagnostic (and nothing else at error/warning severity); the pristine suite
must lint clean at error/warning severity — which is what lets CI run
``python -m repro.lint --strict --suite``.
"""

import pytest

from repro import suite
from repro.analysis import lint_source


def _pristine():
    return suite.source("SinglyLinkedList")


def _hard_findings(report):
    """Errors and warnings (severity >= WARNING); infos are advisory."""
    return [d for d in report.diagnostics if d.severity >= 1]


@pytest.mark.parametrize("name", suite.names())
def test_pristine_suite_lints_clean(name):
    report = lint_source(suite.source(name), file=f"{name}.java")
    assert report.errors == 0, report.render()
    assert report.warnings == 0, report.render()
    assert report.clean(strict=True)


def test_misspelled_field_in_invariant_triggers_spec01():
    source = _pristine().replace(
        'invariant FirstData: "first ~= null --> first..data : content"',
        'invariant FirstData: "first ~= null --> first..data : contnet"',
    )
    assert source != _pristine()
    findings = _hard_findings(lint_source(source))
    assert [d.rule for d in findings] == ["SPEC01"]
    assert "contnet" in findings[0].message
    assert "did you mean 'content'?" in findings[0].message


def test_write_outside_modifies_triggers_frame01():
    source = _pristine().replace(
        '/*: requires "True"\n        modifies content\n        ensures "content = {}" */',
        '/*: requires "True"\n        ensures "content = {}" */',
    )
    assert source != _pristine()
    findings = _hard_findings(lint_source(source))
    assert [d.rule for d in findings] == ["FRAME01"]
    assert "content" in findings[0].message
    assert findings[0].method_name == "clear"


def test_reintroduced_assume_false_triggers_cfg02():
    source = _pristine().replace(
        'first = null;\n        //: content := "{}";',
        'first = null;\n        //: assume Cheat: "False";\n        //: content := "{}";',
    )
    assert source != _pristine()
    findings = _hard_findings(lint_source(source))
    rules = [d.rule for d in findings]
    # The assume is the error; everything after it is dead code (CFG01).
    assert rules.count("CFG02") == 1
    assert set(rules) <= {"CFG01", "CFG02"}
    cfg02 = next(d for d in findings if d.rule == "CFG02")
    assert "assume False" in cfg02.message
    assert cfg02.severity == 2  # error


def test_unreachable_statement_triggers_cfg01():
    source = _pristine().replace(
        "return first == null;",
        "if (first == null) { return true; }\n"
        "        return false;\n"
        "        first = null;",
    )
    assert source != _pristine()
    findings = _hard_findings(lint_source(source))
    assert [d.rule for d in findings] == ["CFG01"]
    assert findings[0].method_name == "isEmpty"


def test_each_mutation_reports_a_source_line():
    source = _pristine().replace(
        'invariant NullNotIn: "null ~: content"',
        'invariant NullNotIn: "null ~: contents"',
    )
    findings = _hard_findings(lint_source(source, file="suite.java"))
    assert findings and all(d.line > 0 for d in findings)
    rendered = findings[0].render()
    assert rendered.startswith("suite.java:")
