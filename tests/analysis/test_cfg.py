"""CFG construction and the generic dataflow fixpoint engine."""

import pytest

from repro.form import ast as F
from repro.form.parser import parse_formula as parse
from repro.analysis.cfg import (
    BasicBlock,
    DataflowAnalysis,
    build_cfg,
    run_dataflow,
)
from repro.gcl.commands import (
    Assert,
    Assign,
    Assume,
    Choice,
    Havoc,
    Seq,
    desugar,
    seq,
)


def test_straight_line_is_one_block():
    cfg = build_cfg(seq(
        Assume(parse("p")),
        Assign("x", parse("1")),
        Assert(parse("p")),
    ))
    assert len(cfg.blocks) == 1
    assert cfg.entry == cfg.exit == 0
    assert len(cfg.blocks[0].commands) == 3
    assert cfg.blocks[0].successors == []


def test_choice_forks_and_joins():
    cfg = build_cfg(seq(
        Assume(parse("p")),
        Choice(Assign("x", parse("1")), Assign("x", parse("2"))),
        Assert(parse("p")),
    ))
    # entry, two branches, join.
    assert len(cfg.blocks) == 4
    entry = cfg.blocks[cfg.entry]
    assert len(entry.successors) == 2
    join = cfg.blocks[cfg.exit]
    assert sorted(join.predecessors) == sorted(entry.successors)
    # Every branch block has the entry as its predecessor.
    for succ in entry.successors:
        assert cfg.blocks[succ].predecessors == [entry.index]


def test_nested_choice():
    inner = Choice(Assign("x", parse("1")), Assign("x", parse("2")))
    cfg = build_cfg(Choice(inner, Assign("y", parse("3"))))
    # Reverse postorder starts at the entry and covers every block.
    order = cfg.reverse_postorder()
    assert order[0] == cfg.entry
    assert set(order) == set(range(len(cfg.blocks)))


def test_reverse_postorder_respects_edges():
    cfg = build_cfg(seq(
        Choice(Assume(parse("p")), Assume(parse("~p"))),
        Assert(parse("q")),
    ))
    order = cfg.reverse_postorder()
    position = {index: k for k, index in enumerate(order)}
    for block in cfg.blocks:
        for succ in block.successors:
            assert position[block.index] < position[succ]


def test_cut_blocks_stop_reachability():
    # assume False ; assert p  --  the assert is never reached.
    cfg = build_cfg(seq(
        Choice(
            seq(Assume(F.FALSE), Assign("x", parse("1"))),
            Assign("y", parse("2")),
        ),
        Assert(parse("p")),
    ))
    reachable = {cmd for cmd, _ in cfg.reachable_commands()}
    assert not any(isinstance(c, Assign) and c.variable == "x" for c in reachable)
    assert any(isinstance(c, Assign) and c.variable == "y" for c in reachable)
    # The join after the choice is still reachable via the live branch.
    assert any(isinstance(c, Assert) for c in reachable)


def test_reachable_blocks_without_cut_semantics():
    command = seq(Assume(F.FALSE), Assert(parse("p")))
    cfg = build_cfg(command)
    assert cfg.reachable_blocks(respect_cuts=False) == {0}
    # One block: the cut hides the assert at command granularity.
    assert [type(c) for c, _ in cfg.reachable_commands()] == [Assume]


def test_havoc_suchthat_rejected():
    havoc = Havoc(("x",), such_that=parse("x = 1"))
    with pytest.raises(ValueError):
        build_cfg(havoc)
    # After desugaring the same command is accepted.
    build_cfg(desugar(havoc))


class ReachingLabels(DataflowAnalysis):
    """Toy forward may-analysis: union of assume labels seen on some path."""

    direction = "forward"

    def boundary(self):
        return frozenset()

    def join(self, facts):
        out = frozenset()
        for fact in facts:
            out |= fact
        return out

    def transfer(self, block, fact):
        for cmd in block.commands:
            if isinstance(cmd, Assume) and cmd.label:
                fact = fact | {cmd.label}
        return fact


def test_dataflow_forward_union():
    cfg = build_cfg(seq(
        Assume(parse("p"), label="pre"),
        Choice(Assume(parse("q"), label="left"), Assume(parse("r"), label="right")),
        Assert(parse("p")),
    ))
    result = run_dataflow(cfg, ReachingLabels())
    assert result.outputs[cfg.exit] == frozenset({"pre", "left", "right"})
    assert result.inputs[cfg.entry] == frozenset()


def test_dataflow_skips_unreached_blocks():
    # A backward analysis starting at the exit: blocks off the exit's
    # reverse-reachable set keep fact None.
    class ExitDistance(DataflowAnalysis):
        direction = "backward"

        def boundary(self):
            return 0

        def join(self, facts):
            return min(facts)

        def transfer(self, block, fact):
            return fact + len(block.commands)

    cfg = build_cfg(seq(
        Choice(Assign("x", parse("1")), Assign("y", parse("2"))),
        Assert(parse("p")),
    ))
    result = run_dataflow(cfg, ExitDistance())
    assert result.inputs[cfg.exit] == 0
    assert result.outputs[cfg.entry] is not None


def test_blocks_expose_predecessors_and_successors_consistently():
    cfg = build_cfg(Choice(Assign("x", parse("1")), Assign("y", parse("2"))))
    for block in cfg.blocks:
        for succ in block.successors:
            assert block.index in cfg.blocks[succ].predecessors
        for pred in block.predecessors:
            assert block.index in cfg.blocks[pred].successors
