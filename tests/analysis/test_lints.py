"""Spec well-formedness (SPEC01-04) and CFG lints (CFG01-03) on small sources."""

from repro.analysis import lint_source
from repro.analysis.diagnostics import Severity
from repro.analysis.lints import check_method_cfg, check_specs
from repro.java.resolver import parse_program


CLEAN = """
class Box {
    private static Object item;
    /*: public static ghost specvar full :: "bool" = "False";
        invariant ItemInv: "full --> item ~= null";
    */
    public static void put(Object x)
    /*: requires "x ~= null"
        modifies full
        ensures "full" */
    {
        item = x;
        //: full := "True";
    }
}
"""


def _rules(report, min_severity=Severity.INFO):
    return [d.rule for d in report.diagnostics if d.severity >= min_severity]


def test_clean_source_has_no_errors_or_warnings():
    report = lint_source(CLEAN)
    assert report.errors == 0 and report.warnings == 0
    assert report.clean(strict=True)


def test_spec01_unknown_name_with_suggestion():
    report = lint_source(CLEAN.replace('"full --> item ~= null"',
                                       '"full --> itme ~= null"'))
    findings = [d for d in report.diagnostics if d.rule == "SPEC01"]
    assert len(findings) == 1
    assert findings[0].severity == Severity.ERROR
    assert "itme" in findings[0].message
    assert "did you mean 'item'?" in findings[0].message
    assert findings[0].class_name == "Box"
    assert findings[0].line > 0


def test_spec01_in_ensures_clause():
    report = lint_source(CLEAN.replace('ensures "full"', 'ensures "ful"'))
    findings = [d for d in report.diagnostics if d.rule == "SPEC01"]
    assert len(findings) == 1
    assert findings[0].method_name == "put"


def test_spec01_unknown_modifies_target():
    report = lint_source(CLEAN.replace("modifies full", "modifies fulll"))
    findings = [d for d in report.diagnostics if d.rule == "SPEC01"]
    assert len(findings) == 1
    assert "modifies" in findings[0].message


def test_spec02_duplicate_invariant_label():
    source = CLEAN.replace(
        'invariant ItemInv: "full --> item ~= null";',
        'invariant ItemInv: "full --> item ~= null";\n'
        '        invariant ItemInv: "item = item";',
    )
    report = lint_source(source)
    findings = [d for d in report.diagnostics if d.rule == "SPEC02"]
    assert len(findings) == 1
    assert "ItemInv" in findings[0].message


def test_spec04_unparsable_formula():
    # Contract formulas are parsed lazily, so a malformed ensures surfaces as
    # SPEC04 (the resolver pre-parses invariants and reports those itself as
    # a located RESOLVE01 — covered below).
    report = lint_source(CLEAN.replace('ensures "full"', 'ensures "full -->"'))
    assert "SPEC04" in _rules(report)


def test_malformed_invariant_becomes_located_resolve01():
    report = lint_source(CLEAN.replace('"full --> item ~= null"',
                                       '"full -->"'))
    assert [d.rule for d in report.diagnostics] == ["RESOLVE01"]
    assert report.diagnostics[0].line > 0
    assert report.diagnostics[0].class_name == "Box"


def test_method_params_are_known_in_contracts():
    # `x` is a parameter, not a state variable: no SPEC01.
    report = lint_source(CLEAN)
    assert "SPEC01" not in _rules(report)


def test_cfg01_unreachable_after_return():
    source = CLEAN.replace(
        "item = x;",
        "if (x != null) { item = x; } else { item = null; }",
    )
    # Both branches rejoin; nothing is unreachable.
    assert "CFG01" not in _rules(lint_source(source))
    source = CLEAN.replace(
        '//: full := "True";',
        'return;\n        //: full := "True";',
    )
    report = lint_source(source)
    findings = [d for d in report.diagnostics if d.rule == "CFG01"]
    assert len(findings) == 1
    assert findings[0].severity == Severity.WARNING


def test_cfg02_reachable_assume():
    source = CLEAN.replace('//: full := "True";',
                           '//: assume Cheat: "x ~= null";\n        //: full := "True";')
    report = lint_source(source)
    findings = [d for d in report.diagnostics if d.rule == "CFG02"]
    assert len(findings) == 1
    assert findings[0].severity == Severity.ERROR
    assert "trusted" in findings[0].message


def test_cfg02_distinguishes_assume_false():
    source = CLEAN.replace('//: full := "True";',
                           '//: assume Cheat: "False";\n        //: full := "True";')
    report = lint_source(source)
    findings = [d for d in report.diagnostics if d.rule == "CFG02"]
    assert len(findings) == 1
    assert "assume False" in findings[0].message


def test_unreachable_assume_is_not_cfg02():
    # An assume after a return never weakens anything; CFG01 reports the dead
    # code instead.
    source = CLEAN.replace(
        "item = x;",
        'return;\n        //: assume Cheat: "False";',
    )
    report = lint_source(source)
    assert "CFG02" not in _rules(report)
    assert "CFG01" in _rules(report)


def test_cfg03_statically_dischargeable_assert():
    source = CLEAN.replace(
        '//: full := "True";',
        '//: assert Redundant: "x ~= null";\n        //: full := "True";')
    report = lint_source(source)
    findings = [d for d in report.diagnostics if d.rule == "CFG03"]
    # The requires clause assumes x ~= null and nothing assigns x.
    assert len(findings) == 1
    assert findings[0].severity == Severity.INFO
    assert "statically dischargeable" in findings[0].message


def test_parse_failure_becomes_parse01():
    report = lint_source("class Broken {{{")
    assert [d.rule for d in report.diagnostics] == ["PARSE01"]
    assert report.errors == 1
    assert not report.clean()


def test_check_specs_and_cfg_usable_on_programs():
    program = parse_program(CLEAN)
    assert check_specs(program) == []
    assert check_method_cfg(program, "Box", "put") == []


def test_render_respects_min_severity():
    source = CLEAN.replace(
        '//: full := "True";',
        '//: assert Redundant: "x ~= null";\n        //: full := "True";')
    report = lint_source(source, file="box.java")
    assert "CFG03" in report.render(Severity.INFO)
    assert report.render(Severity.WARNING) == ""
