"""The static-discharge prover tier: dispatcher pre-pass, STATIC verdict,
report plumbing, and verdict parity with a static-tier-disabled run."""

from repro import suite
from repro.core.report import format_table
from repro.core.verifier import verify, verify_class
from repro.form.parser import parse_formula as parse
from repro.java.resolver import parse_program
from repro.provers.base import ProverAnswer, Verdict
from repro.provers.cache import SequentCache
from repro.provers.dispatcher import Dispatcher, ParallelDispatcher, make_provers
from repro.vcgen.sequent import sequent
from repro.vcgen.vcgen import generate_method_vc


def _sequents():
    return [
        sequent([parse("p")], parse("x = x")),       # trivial
        sequent([parse("a = b")], parse("b = a")),   # symmetric equality
        sequent([parse("p & q")], parse("q")),       # conjunct
        sequent([parse("p"), parse("~p")], parse("r")),  # contradiction
        sequent([parse("p")], parse("~(~p)")),       # needs a prover (normalizing)
    ]


def test_static_verdict_counts_as_proved():
    answer = ProverAnswer(Verdict.STATIC, "static")
    assert answer.proved


def test_sequential_dispatcher_static_pre_pass():
    dispatcher = Dispatcher(make_provers(["syntactic"]), static_tier=True)
    result = dispatcher.prove_all(_sequents())
    assert result.statically_discharged == 4
    assert result.proved == 5  # syntactic still proves the last one
    statics = [o for o in result.outcomes if o.prover == "static"]
    assert len(statics) == 4
    for outcome in statics:
        assert outcome.answers[-1].verdict is Verdict.STATIC
        assert outcome.answers[-1].detail.startswith("static discharge: ")
    # Stats accrue under the "static" pseudo-prover, zero time.
    assert result.stats["static"].proved == 4
    assert result.stats["static"].time == 0.0
    # The live prover only saw the one remaining sequent.
    assert result.stats["syntactic"].attempted == 1
    assert dispatcher.static.by_reason == {
        "trivial": 1, "symmetric-equality": 1, "conjunct": 1, "contradiction": 1,
    }


def test_static_tier_disabled_by_default():
    result = Dispatcher(make_provers(["syntactic"])).prove_all(_sequents())
    assert result.statically_discharged == 0
    assert all(o.prover != "static" for o in result.outcomes)


def test_static_answers_bypass_and_never_touch_the_cache():
    cache = SequentCache()
    dispatcher = Dispatcher(make_provers(["syntactic"]), cache=cache, static_tier=True)
    result = dispatcher.prove_all(_sequents())
    assert result.statically_discharged == 4
    # Only the one live sequent produced cache traffic.
    assert result.cache_stats.hits == 0
    assert result.cache_stats.misses == 1
    # Nothing stored under the static tier: a rerun re-discharges statically.
    rerun = Dispatcher(make_provers(["syntactic"]), cache=cache, static_tier=True)
    again = rerun.prove_all(_sequents())
    assert again.statically_discharged == 4
    assert again.cache_stats.hits == 1


def test_parallel_thread_backend_matches_sequential():
    sequential = Dispatcher(make_provers(["syntactic"]), static_tier=True).prove_all(
        _sequents()
    )
    parallel = ParallelDispatcher.from_names(
        ["syntactic"], workers=2, static_tier=True
    ).prove_all(_sequents())
    assert [o.proved for o in parallel.outcomes] == [o.proved for o in sequential.outcomes]
    assert [o.prover for o in parallel.outcomes] == [o.prover for o in sequential.outcomes]
    assert parallel.statically_discharged == sequential.statically_discharged == 4


def test_parallel_process_backend_runs_static_pre_pass_in_parent():
    dispatcher = ParallelDispatcher.from_names(
        ["syntactic"], workers=1, backend="process", static_tier=True
    )
    result = dispatcher.prove_all(_sequents())
    assert result.statically_discharged == 4
    assert result.proved == 5
    assert dispatcher.static.checked == 5


def test_dedup_fans_out_static_outcomes():
    duplicated = _sequents()[:1] * 3
    result = Dispatcher(
        make_provers(["syntactic"]), dedup=True, static_tier=True
    ).prove_all(duplicated)
    assert result.proved == 3
    assert result.dedup_replayed == 2
    assert result.statically_discharged == 3  # representative + fan-outs


def test_suite_verdicts_identical_with_and_without_static_tier():
    """The acceptance gate: enabling the tier changes attribution, never
    verdicts, and discharges a nonzero number of sequents."""
    program = parse_program(suite.source("SinglyLinkedList"))
    for method in ("add", "isEmpty", "member"):
        vc = generate_method_vc(program, "SinglyLinkedList", method)
        base = Dispatcher(make_provers(["syntactic"])).prove_all(vc.sequents)
        tier = Dispatcher(make_provers(["syntactic"]), static_tier=True).prove_all(
            vc.sequents
        )
        assert [o.proved for o in tier.outcomes] == [o.proved for o in base.outcomes]
        assert tier.statically_discharged > 0, method


def test_verify_reports_statically_discharged():
    source = suite.source("SinglyLinkedList")
    base = verify(source, method="isEmpty", class_name="SinglyLinkedList",
                  provers=["syntactic"])
    tier = verify(source, method="isEmpty", class_name="SinglyLinkedList",
                  provers=["syntactic"], static_tier=True)
    assert base.statically_discharged == 0
    assert tier.statically_discharged == 1
    assert tier.proved_sequents == base.proved_sequents
    assert tier.succeeded == base.succeeded
    assert "Static tier discharged 1 sequents" in tier.format()
    assert "Static tier" not in base.format()


def test_figure15_table_grows_static_column_only_when_used():
    source = suite.source("SinglyLinkedList")
    base = verify_class(source, class_name="SinglyLinkedList",
                        provers=["syntactic"], methods=["isEmpty"])
    tier = verify_class(source, class_name="SinglyLinkedList",
                        provers=["syntactic"], methods=["isEmpty"],
                        static_tier=True)
    assert "Static" not in base.row(["syntactic"])
    assert tier.row(["syntactic"])["Static"] == "1"
    assert "Static" in format_table([tier], ["syntactic"]).splitlines()[0]
    assert "Static" not in format_table([base], ["syntactic"]).splitlines()[0]
