"""Guarded commands: translation from Java, desugaring (Fig 11/12) and wlp (Fig 10)."""

import pytest

from repro.form import ast as F
from repro.form.parser import parse_formula as parse
from repro.form.printer import to_str
from repro.form.rewrite import simplify
from repro.gcl.commands import (
    Assert,
    Assign,
    Assume,
    Choice,
    Havoc,
    If,
    Loop,
    Note,
    Seq,
    assigned_variables,
    desugar,
    seq,
)
from repro.gcl.translate import MethodTranslator, TranslationError
from repro.gcl.wlp import verification_condition, wlp
from repro.java.resolver import parse_program

SOURCE = """
public /*: claimedby List */ class Node { public Object data; public Node next; }
class List {
    private static Node first;
    private static int size;
    /*: public static ghost specvar content :: "objset" = "{}"; */

    public static void add(Object x)
    /*: requires "x ~= null" modifies content ensures "content = old content Un {x}" */
    {
        Node n = new Node();
        n.next = first;
        first = n;
        size = size + 1;
        //: content := "{x} Un content";
    }

    public static Object head()
    /*: requires "first ~= null" ensures "True" */
    {
        if (first != null) { return first.data; }
        return null;
    }

    public static void count()
    /*: requires "True" ensures "True" */
    {
        int i = 0;
        while /*: inv "0 <= i" */ (i < size) {
            i = i + 1;
        }
    }
}
"""


def _translate(method, post="True"):
    program = parse_program(SOURCE)
    info = program.method("List", method)
    translator = MethodTranslator(program, "List", info.decl, postcondition=parse(post))
    return program, translator.translate()


# -- translation -------------------------------------------------------------------------


def test_allocation_produces_fresh_object_facts():
    _, result = _translate("add")
    text = repr(result.command)
    assert "alloc" in text
    # The allocated object is constrained to be new and non-null.
    assert "fresh" in text


def test_field_assignment_becomes_functional_update():
    _, result = _translate("add")
    assigns = [c for c in _flatten(result.command) if isinstance(c, Assign)]
    next_updates = [a for a in assigns if a.variable == "next"]
    assert next_updates and F.is_app_of(next_updates[0].value, "fieldWrite")


def test_ghost_assignment_translated():
    _, result = _translate("add")
    assigns = [c for c in _flatten(result.command) if isinstance(c, Assign)]
    assert any(a.variable == "content" for a in assigns)


def test_dereference_generates_null_check():
    _, result = _translate("head")
    asserts = [c for c in _flatten(result.command) if isinstance(c, Assert)]
    assert any(c.label == "null-check" for c in asserts)


def test_return_checks_postcondition():
    _, result = _translate("head", post="result = result")
    asserts = [c for c in _flatten(result.command) if isinstance(c, Assert)]
    assert any(c.label == "post:return" for c in asserts)


def test_loop_translation_keeps_invariant():
    _, result = _translate("count")
    loops = [c for c in _flatten(result.command) if isinstance(c, Loop)]
    assert len(loops) == 1
    assert loops[0].invariants[0][1] == parse("0 <= i")


def test_method_calls_rejected():
    program = parse_program(
        "class A { static void f() /*: requires \"True\" ensures \"True\" */ { g(); } "
        "static void g() /*: requires \"True\" ensures \"True\" */ { } }"
    )
    info = program.method("A", "f")
    translator = MethodTranslator(program, "A", info.decl, postcondition=F.TRUE)
    with pytest.raises(TranslationError):
        translator.translate()


def _flatten(command):
    out = [command]
    if isinstance(command, Seq):
        for sub in command.commands:
            out.extend(_flatten(sub))
    elif isinstance(command, Choice):
        out.extend(_flatten(command.left))
        out.extend(_flatten(command.right))
    elif isinstance(command, If):
        out.extend(_flatten(command.then_branch))
        out.extend(_flatten(command.else_branch))
    elif isinstance(command, Loop):
        out.extend(_flatten(command.body))
    return out


# -- desugaring (Figures 11 and 12) ----------------------------------------------------------


def test_desugar_if_is_choice_of_assumes():
    command = If(parse("c"), Assume(parse("p")), Assume(parse("q")))
    lowered = desugar(command)
    assert isinstance(lowered, Choice)
    assert isinstance(lowered.left, Seq) and isinstance(lowered.left.commands[0], Assume)


def test_desugar_note_is_assert_then_assume():
    lowered = desugar(Note(parse("p"), label="lemma"))
    assert isinstance(lowered, Seq)
    assert isinstance(lowered.commands[0], Assert)
    assert isinstance(lowered.commands[1], Assume)


def test_desugar_havoc_suchthat_emits_feasibility_assert():
    lowered = desugar(Havoc(("x",), parse("0 <= x")))
    kinds = [type(c).__name__ for c in lowered.commands]
    assert kinds == ["Assert", "Havoc", "Assume"]
    assert isinstance(lowered.commands[0].formula, F.Quant)


def test_desugar_loop_structure():
    loop = Loop((("inv", parse("0 <= i")),), parse("i < n"), Assign("i", parse("i + 1")))
    lowered = desugar(loop)
    kinds = [type(c).__name__ for c in lowered.commands]
    assert kinds[0] == "Assert"          # invariant initially
    assert "Havoc" in kinds              # havoc modified variables
    assert kinds[-1] == "Choice"         # exit vs iterate


def test_assigned_variables():
    command = seq(Assign("x", parse("1")), If(parse("c"), Assign("y", parse("2")), Seq(())))
    assert assigned_variables(command) == {"x", "y"}


# -- wlp (Figure 10) ---------------------------------------------------------------------------


def test_wlp_assume():
    assert to_str(wlp(Assume(parse("p")), parse("q"))) == "p --> q"


def test_wlp_assert():
    assert to_str(wlp(Assert(parse("p")), parse("q"))) == "p & q"


def test_wlp_seq_composes_right_to_left():
    command = seq(Assume(parse("p")), Assert(parse("q")))
    assert to_str(simplify(wlp(command, F.TRUE))) == "p --> q"


def test_wlp_choice_is_conjunction():
    command = Choice(Assert(parse("p")), Assert(parse("q")))
    result = wlp(command, F.TRUE)
    assert isinstance(result, F.And)


def test_wlp_assign_substitutes():
    command = Assign("x", parse("x + 1"))
    result = wlp(command, parse("x = 2"))
    assert to_str(result) == "x + 1 = 2"


def test_wlp_havoc_renames():
    command = Havoc(("x",))
    result = wlp(command, parse("x < z & y = 1"))
    text = to_str(result)
    assert "y = 1" in text and "x#" in text and " z" in text


def test_verification_condition_of_correct_snippet_is_valid():
    # assume x = 1; assert x = 1  --> the VC is discharged by the syntactic prover.
    from repro.provers.syntactic import SyntacticProver
    from repro.vcgen.sequent import sequent as mk_sequent

    command = seq(Assume(parse("x = 1")), Assert(parse("x = 1")))
    vc = simplify(verification_condition(command))
    assert SyntacticProver().prove(mk_sequent([], vc)).proved
