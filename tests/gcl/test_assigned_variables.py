"""``assigned_variables`` over every command form, and the property that
desugaring preserves the assigned-variable set (desugaring introduces
assumes/asserts and loop havocs over *already-assigned* variables, never a
write to a new variable)."""

import random

import pytest

from repro.form import ast as F
from repro.gcl.commands import (
    SKIP,
    Assert,
    Assign,
    Assume,
    Choice,
    Command,
    Havoc,
    If,
    Loop,
    Note,
    Seq,
    assigned_variables,
    desugar,
    seq,
    seq_of,
)

P = F.Var("p")


def test_assume_assert_note_assign_nothing():
    assert assigned_variables(Assume(P)) == set()
    assert assigned_variables(Assert(P)) == set()
    assert assigned_variables(Note(P, label="n")) == set()


def test_assign_and_havoc():
    assert assigned_variables(Assign("x", P)) == {"x"}
    assert assigned_variables(Havoc(("a", "b"))) == {"a", "b"}
    assert assigned_variables(Havoc(("c",), such_that=P)) == {"c"}


def test_seq_choice_if_loop_union():
    assert assigned_variables(seq(Assign("x", P), Havoc(("y",)))) == {"x", "y"}
    assert assigned_variables(Choice(Assign("a", P), Assign("b", P))) == {"a", "b"}
    assert assigned_variables(
        If(P, Assign("t", P), Assign("e", P))
    ) == {"t", "e"}
    loop = Loop(invariants=(("I", P),), condition=P, body=Assign("i", P))
    assert assigned_variables(loop) == {"i"}


def test_skip_and_empty_seq():
    assert assigned_variables(SKIP) == set()
    assert assigned_variables(Seq(())) == set()


def test_unknown_command_raises():
    class Rogue(Command):
        pass

    with pytest.raises(TypeError):
        assigned_variables(Rogue())


def test_seq_factory_flattens_but_preserves_writes():
    nested = seq(seq(Assign("x", P), seq(Assign("y", P))), Assign("z", P))
    assert all(not isinstance(c, Seq) for c in nested.commands)
    assert assigned_variables(nested) == {"x", "y", "z"}
    assert assigned_variables(seq_of([nested])) == {"x", "y", "z"}


# ---------------------------------------------------------------------------
# Property: desugar preserves the assigned-variable set.
# ---------------------------------------------------------------------------


def _random_command(rng: random.Random, depth: int) -> Command:
    names = ["u", "v", "w", "x", "y"]
    leaf_builders = [
        lambda: Assume(P),
        lambda: Assert(P),
        lambda: Note(P, label="n"),
        lambda: Assign(rng.choice(names), P),
        lambda: Havoc((rng.choice(names),)),
        lambda: Havoc((rng.choice(names),), such_that=P),
    ]
    if depth == 0:
        return rng.choice(leaf_builders)()
    inner_builders = [
        lambda: seq(*[_random_command(rng, depth - 1)
                      for _ in range(rng.randint(0, 3))]),
        lambda: Choice(_random_command(rng, depth - 1),
                       _random_command(rng, depth - 1)),
        lambda: If(P, _random_command(rng, depth - 1),
                   _random_command(rng, depth - 1)),
        lambda: Loop(invariants=(("I", P),), condition=P,
                     body=_random_command(rng, depth - 1)),
    ]
    return rng.choice(leaf_builders + inner_builders)()


@pytest.mark.parametrize("tree_seed", range(20))
def test_desugar_preserves_assigned_variables(tree_seed):
    rng = random.Random(tree_seed)
    command = _random_command(rng, depth=3)
    assert assigned_variables(desugar(command)) == assigned_variables(command)


def test_desugar_loop_havocs_only_assigned_variables():
    loop = Loop(invariants=(("I", P),), condition=P,
                body=seq(Assign("x", P), Havoc(("y",))))
    lowered = desugar(loop)
    assert assigned_variables(lowered) == {"x", "y"}
    havocs = [c for c in lowered.commands if isinstance(c, Havoc)]
    assert havocs and havocs[0].variables == ("x", "y")
