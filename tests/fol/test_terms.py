"""Unification, substitution and clause utilities of the first-order prover."""

import pytest

from repro.fol.terms import (
    Clause,
    FApp,
    FVar,
    Literal,
    apply_subst,
    clause_vars,
    clause_weight,
    const,
    rename_clause,
    subsumes,
    unify,
    unify_literals,
)


def f(*args):
    return FApp("f", args)


def g(*args):
    return FApp("g", args)


X, Y, Z = FVar("X"), FVar("Y"), FVar("Z")
a, b, c = const("a"), const("b"), const("c")


def test_unify_variable_with_constant():
    assert unify(X, a) == {"X": a}


def test_unify_identical_terms():
    assert unify(f(a, b), f(a, b)) == {}


def test_unify_nested():
    subst = unify(f(X, g(Y)), f(a, g(b)))
    assert subst == {"X": a, "Y": b}


def test_unify_occurs_check():
    assert unify(X, f(X)) is None


def test_unify_clash():
    assert unify(f(a), g(a)) is None
    assert unify(f(a), f(b)) is None


def test_unify_shared_variable():
    subst = unify(f(X, X), f(a, Y))
    assert apply_subst(f(X, X), subst) == apply_subst(f(a, Y), subst)


def test_unify_is_most_general():
    subst = unify(f(X), f(Y))
    # The unifier must not instantiate to a constant.
    assert all(isinstance(value, FVar) for value in subst.values())


def test_apply_subst_resolves_chains():
    subst = unify(f(X, Y), f(Y, a))
    assert apply_subst(X, subst) == a


def test_unify_literals_same_predicate():
    l1 = Literal(True, "p", (X, b))
    l2 = Literal(True, "p", (a, Y))
    subst = unify_literals(l1, l2)
    assert subst == {"X": a, "Y": b}


def test_unify_literals_different_predicates():
    l1 = Literal(True, "p", (X,))
    l2 = Literal(True, "q", (a,))
    assert unify_literals(l1, l2) is None


def test_clause_deduplicates_literals():
    lit = Literal(True, "p", (a,))
    clause = Clause((lit, lit))
    assert len(clause) == 1


def test_tautology_detection():
    lit = Literal(True, "p", (a,))
    clause = Clause((lit, lit.negate()))
    assert clause.is_tautology()
    assert Clause((Literal(True, "=", (a, a)),)).is_tautology()


def test_clause_vars_and_rename():
    clause = Clause((Literal(True, "p", (X, Y)), Literal(False, "q", (Z,))))
    assert clause_vars(clause) == {"X", "Y", "Z"}
    renamed = rename_clause(clause, "_1")
    assert clause_vars(renamed) == {"X_1", "Y_1", "Z_1"}


def test_clause_weight_counts_symbols():
    light = Clause((Literal(True, "p", (a,)),))
    heavy = Clause((Literal(True, "p", (f(g(a), b),)), Literal(True, "q", (c,))))
    assert clause_weight(light) < clause_weight(heavy)


def test_subsumption_ground():
    general = Clause((Literal(True, "p", (X,)),))
    specific = Clause((Literal(True, "p", (a,)), Literal(True, "q", (b,))))
    assert subsumes(general, specific)
    assert not subsumes(specific, general)


def test_subsumption_respects_polarity():
    general = Clause((Literal(False, "p", (X,)),))
    specific = Clause((Literal(True, "p", (a,)),))
    assert not subsumes(general, specific)
