"""Property tests for the set-of-support + ordered resolution engine.

Three properties pin the new strategy layer to the trusted baseline (the
PR-2 engine: ``strategy="fair"``, ``ordering="none"``, ``selection="none"``):

* *soundness relative to fair*: on randomly generated clause sets, whenever
  SOS+ordered resolution derives the empty clause, the fair strategy (run
  with generous limits) derives it too — the restrictions may lose proofs,
  never invent them;
* *relative completeness*: on a corpus of small valid and invalid sequents,
  the SOS+ordered prover and the fair prover return the same verdicts;
* *index exactness*: the top-symbol literal index retrieves exactly the
  resolution partners the naive all-pairs scan finds, and the subsumption
  index agrees clause-for-clause with the naive subsumer scan.
"""

import random

import pytest

from repro.fol.index import LiteralIndex, SubsumptionIndex, UnitIndex
from repro.fol.prover import FirstOrderProver
from repro.fol.resolution import ResolutionProver, _resolvents
from repro.fol.terms import (
    Clause,
    FApp,
    FVar,
    Literal,
    subsumes,
    unify_literals,
    apply_subst_clause,
)
from repro.form.parser import parse_formula as parse
from repro.vcgen.sequent import sequent

# ---------------------------------------------------------------------------
# Random clause generation (seeded: every run sees the same corpus)
# ---------------------------------------------------------------------------

_PREDICATES = [("p", 1), ("q", 1), ("r", 2)]
_CONSTANTS = ["a", "b", "c"]
_VARIABLES = ["X", "Y"]


def _random_term(rng: random.Random, depth: int = 0):
    roll = rng.random()
    if roll < 0.4:
        return FVar(rng.choice(_VARIABLES))
    if roll < 0.85 or depth >= 1:
        return FApp(rng.choice(_CONSTANTS), ())
    return FApp("f", (_random_term(rng, depth + 1),))


def _random_literal(rng: random.Random) -> Literal:
    pred, arity = rng.choice(_PREDICATES)
    args = tuple(_random_term(rng) for _ in range(arity))
    return Literal(rng.random() < 0.55, pred, args)


def _random_clause(rng: random.Random) -> Clause:
    return Clause(tuple(_random_literal(rng) for _ in range(rng.randint(1, 3))))


def _random_clause_set(rng: random.Random):
    return [_random_clause(rng) for _ in range(rng.randint(3, 8))]


def _canonical(clause: Clause) -> str:
    """Alpha-rename variables in order of appearance, for multiset comparison."""
    mapping = {}

    def canon_term(term):
        if isinstance(term, FVar):
            if term.name not in mapping:
                mapping[term.name] = FVar(f"V{len(mapping)}")
            return mapping[term.name]
        return FApp(term.func, tuple(canon_term(a) for a in term.args))

    return " | ".join(
        str(Literal(lit.positive, lit.pred, tuple(canon_term(a) for a in lit.args)))
        for lit in clause.literals
    )


# ---------------------------------------------------------------------------
# Soundness: SOS+ordered refutations are fair refutations
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(40))
def test_sos_ordered_never_refutes_what_fair_cannot(seed):
    rng = random.Random(seed)
    clauses = _random_clause_set(rng)
    # Seed the support the way the prover does: the all-negative clauses
    # (the semantic set of support of the all-atoms-true interpretation).
    support = [c for c in clauses if all(not lit.positive for lit in c.literals)]
    restricted = ResolutionProver(
        max_seconds=2.0, strategy="sos", ordering="kbo", selection="negative"
    )
    result = restricted.refute(clauses, support=support)
    if not result.refuted:
        return
    fair = ResolutionProver(
        max_seconds=10.0,
        max_processed=20000,
        max_generated=400000,
        strategy="fair",
        ordering="none",
        selection="none",
    )
    assert fair.refute(clauses).refuted, (
        f"seed {seed}: SOS+ordered refuted a clause set the fair baseline "
        f"does not refute: {[str(c) for c in clauses]}"
    )


# ---------------------------------------------------------------------------
# Relative completeness: same verdicts on a small sequent corpus
# ---------------------------------------------------------------------------

_VALID = [
    (["p --> q", "p"], "q"),
    (["ALL x. p x --> q x", "p a"], "q a"),
    (["ALL x y. r x y --> r y x", "r a b"], "r b a"),
    (["ALL x y z. r x y & r y z --> r x z", "r a b", "r b c"], "r a c"),
    (["a = b", "p a"], "p b"),
    (["f a = b", "a = c"], "f c = b"),
    (["ALL x. x : S --> x : T", "a : S"], "a : T"),
    (["EX x. p x", "ALL x. p x --> q x"], "EX x. q x"),
    (["ALL x. p x | q x", "ALL x. ~ p x"], "q a"),
    ([], "(ALL x. p x) --> p a"),
    # Inconsistent assumptions: provable only through assumption-side
    # resolution — the case that forced the semantic (negative-clause) seed.
    # (The goal must share a symbol with the contradiction, or the
    # relevance filter soundly drops it for both strategies.)
    (["p a", "~ p a"], "p b"),
]

_INVALID = [
    (["p --> q", "q"], "p"),
    (["p a"], "p b"),
    (["ALL x. p x --> q x"], "q a"),
    (["a = b"], "a = c"),
    ([], "p a"),
    (["EX x. p x"], "p a"),
    (["r a b", "r b c"], "r a c"),
]


def _verdict(assumptions, goal, **options):
    seq = sequent([parse(a) for a in assumptions], parse(goal))
    return FirstOrderProver(timeout=5.0, **options).prove(seq).proved


@pytest.mark.parametrize("assumptions, goal", _VALID)
def test_sos_agrees_with_fair_on_valid_sequents(assumptions, goal):
    assert _verdict(assumptions, goal, strategy="fair", ordering="none", selection="none")
    assert _verdict(assumptions, goal, strategy="sos", ordering="kbo", selection="negative")


@pytest.mark.parametrize("assumptions, goal", _INVALID)
def test_sos_agrees_with_fair_on_invalid_sequents(assumptions, goal):
    assert not _verdict(assumptions, goal, strategy="fair", ordering="none", selection="none")
    assert not _verdict(assumptions, goal, strategy="sos", ordering="kbo", selection="negative")


# ---------------------------------------------------------------------------
# Index exactness: retrieval == all-pairs scan
# ---------------------------------------------------------------------------


def _resolvents_via_index(probe: Clause, actives):
    index = LiteralIndex()
    for clause_id, clause in enumerate(actives):
        index.add(clause_id, clause)
    out = []
    for i, literal in enumerate(probe.literals):
        for _cid, partner, j in index.resolution_candidates(literal):
            other = partner.literals[j]
            mgu = unify_literals(literal, other)
            if mgu is None:
                continue
            rest1 = probe.literals[:i] + probe.literals[i + 1:]
            rest2 = partner.literals[:j] + partner.literals[j + 1:]
            out.append(apply_subst_clause(Clause(rest1 + rest2), mgu))
    return out


@pytest.mark.parametrize("seed", range(40))
def test_literal_index_finds_exactly_the_all_pairs_partners(seed):
    rng = random.Random(1000 + seed)
    actives = [_random_clause_set(rng), _random_clause_set(rng)][0]
    probe = _random_clause(rng)
    # Standardise apart, as the engine does before any inference.
    from repro.fol.terms import rename_clause

    actives = [rename_clause(c, f"_g{i}") for i, c in enumerate(actives)]
    probe = rename_clause(probe, "_probe")
    naive = [r for other in actives for r in _resolvents(probe, other)]
    indexed = _resolvents_via_index(probe, actives)
    assert sorted(map(_canonical, indexed)) == sorted(map(_canonical, naive)), (
        f"seed {seed}: index and all-pairs scan disagree"
    )


@pytest.mark.parametrize("seed", range(40))
def test_subsumption_index_agrees_with_naive_scan(seed):
    rng = random.Random(2000 + seed)
    actives = _random_clause_set(rng)
    index = SubsumptionIndex()
    for clause in actives:
        index.add(clause)
    for _ in range(10):
        probe = _random_clause(rng)
        naive = any(subsumes(general, probe) for general in actives)
        assert index.subsumed(probe) == naive


def test_unit_index_deletion_is_the_unit_resolvent():
    index = UnitIndex()
    index.add(Clause((Literal(True, "p", (FApp("a", ()),)),)))  # p(a)
    # q(X) | ~p(a): unit deletion must remove ~p(a).
    clause = Clause((
        Literal(True, "q", (FVar("X"),)),
        Literal(False, "p", (FApp("a", ()),)),
    ))
    simplified = index.simplify_clause(clause)
    assert simplified is not None
    assert [lit.pred for lit in simplified.literals] == ["q"]
    # p(a) | q(X) is an instance of the unit: the whole clause is redundant.
    subsumed = Clause((
        Literal(True, "p", (FApp("a", ()),)),
        Literal(True, "q", (FVar("X"),)),
    ))
    assert index.simplify_clause(subsumed) is None


# ---------------------------------------------------------------------------
# Backward subsumption (flagged) against the fair baseline
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(40))
def test_backward_subsumption_never_refutes_what_fair_cannot(seed):
    """Backward subsumption deletes redundant active clauses; it may lose
    proofs (within limits), never invent them."""
    rng = random.Random(3000 + seed)
    clauses = _random_clause_set(rng)
    support = [c for c in clauses if all(not lit.positive for lit in c.literals)]
    pruned = ResolutionProver(
        max_seconds=2.0, strategy="sos", ordering="kbo", selection="negative",
        backward_subsumption=True,
    )
    result = pruned.refute(clauses, support=support)
    if not result.refuted:
        return
    fair = ResolutionProver(
        max_seconds=10.0,
        max_processed=20000,
        max_generated=400000,
        strategy="fair",
        ordering="none",
        selection="none",
    )
    assert fair.refute(clauses).refuted, (
        f"seed {seed}: backward subsumption refuted a clause set the fair "
        f"baseline does not refute: {[str(c) for c in clauses]}"
    )


@pytest.mark.parametrize("assumptions, goal", _VALID)
def test_backward_subsumption_agrees_on_valid_sequents(assumptions, goal):
    assert _verdict(assumptions, goal, backward_subsumption=True)


@pytest.mark.parametrize("assumptions, goal", _INVALID)
def test_backward_subsumption_agrees_on_invalid_sequents(assumptions, goal):
    assert not _verdict(assumptions, goal, backward_subsumption=True)


def test_literal_index_remove_drops_every_entry_of_the_clause():
    index = LiteralIndex()
    kept = Clause((Literal(True, "p", (FApp("a", ()),)),))
    gone = Clause((Literal(True, "p", (FApp("b", ()),)), Literal(False, "q", (FVar("X"),))))
    index.add(1, kept)
    index.add(2, gone)
    index.remove(2)
    probe_p = Literal(False, "p", (FVar("Y"),))
    assert [cid for cid, _c, _i in index.resolution_candidates(probe_p)] == [1]
    probe_q = Literal(True, "q", (FApp("c", ()),))
    assert list(index.resolution_candidates(probe_q)) == []


def test_backward_subsumption_removes_subsumed_active_clause():
    """p(X) activated after p(a) | q(b) must evict it: the only resolvent
    against ~p(c) then comes through the subsumer (the proof still closes)."""
    clauses = [
        Clause((Literal(True, "p", (FApp("a", ()),)), Literal(True, "q", (FApp("b", ()),)))),
        Clause((Literal(True, "p", (FVar("X"),)),)),
        Clause((Literal(False, "p", (FApp("c", ()),)),)),
    ]
    pruned = ResolutionProver(
        max_seconds=2.0, strategy="fair", ordering="none", selection="none",
        backward_subsumption=True,
    )
    assert pruned.refute(clauses).refuted


# ---------------------------------------------------------------------------
# Strategy knobs key the verdict cache
# ---------------------------------------------------------------------------


def test_strategy_knobs_are_part_of_the_options_signature():
    base = FirstOrderProver()
    assert "strategy='sos'" in base.options_signature()
    assert "ordering='kbo'" in base.options_signature()
    assert "selection='negative'" in base.options_signature()
    assert "sos_seed='negative'" in base.options_signature()
    assert "backward_subsumption=True" in base.options_signature()
    assert "fragment_gate=True" in base.options_signature()
    fair = FirstOrderProver(strategy="fair", ordering="none", selection="none")
    assert base.options_signature() != fair.options_signature()
    pruning = FirstOrderProver(backward_subsumption=False)
    assert base.options_signature() != pruning.options_signature()
    ungated = FirstOrderProver(fragment_gate=False)
    assert base.options_signature() != ungated.options_signature()
