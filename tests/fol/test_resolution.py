"""The resolution prover on classic first-order problems, and the HOL-to-FOL
translation on sequents with reachability."""

import pytest

from repro.fol.clausify import Clausifier
from repro.fol.hol2fol import translate_sequent
from repro.fol.prover import FirstOrderProver
from repro.fol.resolution import ResolutionProver
from repro.form.parser import parse_formula as parse
from repro.vcgen.sequent import sequent


def _refutes(assumptions, goal, timeout=8.0):
    seq = sequent([parse(a) for a in assumptions], parse(goal))
    return FirstOrderProver(timeout=timeout).prove(seq).proved


# -- valid entailments the prover must find ---------------------------------------

VALID = [
    (["p"], "p"),
    (["p --> q", "p"], "q"),
    (["ALL x. p x --> q x", "p a"], "q a"),
    (["ALL x. p x"], "p a"),
    (["ALL x y. r x y --> r y x", "r a b"], "r b a"),
    (["ALL x y z. r x y & r y z --> r x z", "r a b", "r b c"], "r a c"),
    (["a = b", "p a"], "p b"),
    (["a = b", "b = c"], "a = c"),
    (["f a = b", "a = c"], "f c = b"),
    (["ALL x. x : S --> x : T", "a : S"], "a : T"),
    (["EX x. p x", "ALL x. p x --> q x"], "EX x. q x"),
    (["ALL x. p x | q x", "ALL x. ~ p x"], "q a"),
    ([], "p a --> p a"),
    ([], "(ALL x. p x) --> p a"),
]


@pytest.mark.parametrize("assumptions, goal", VALID)
def test_proves_valid_entailments(assumptions, goal):
    assert _refutes(assumptions, goal)


# -- invalid entailments must never be "proved" (soundness) -------------------------

INVALID = [
    (["p --> q", "q"], "p"),
    (["p a"], "p b"),
    (["ALL x. p x --> q x"], "q a"),
    (["a = b"], "a = c"),
    ([], "p a"),
    (["EX x. p x"], "p a"),
    (["r a b", "r b c"], "r a c"),
]


@pytest.mark.parametrize("assumptions, goal", INVALID)
def test_never_proves_invalid_entailments(assumptions, goal):
    assert not _refutes(assumptions, goal, timeout=2.0)


# -- reachability translation ---------------------------------------------------------


def test_reachability_axioms_prove_step():
    assumptions = ["(root, x) : {(u, v). u..next = v}^*"]
    goal = "(root, x..next) : {(u, v). u..next = v}^*"
    # reach(root, x) and the step/transitivity axioms give reach(root, x.next).
    assert _refutes(assumptions, goal)


def test_reachability_reflexivity():
    assert _refutes([], "(x, x) : {(u, v). u..next = v}^*")


def test_reachability_not_assumed_invalid():
    assert not _refutes([], "(x, y) : {(u, v). u..next = v}^*", timeout=2.0)


def test_union_backbone_reachability_step():
    """Reachability through the left|right tree backbone: the union axioms
    discharge the traversal-invariant preservation shape of BST.contains."""
    rel = "{(u, v). u..left = v | u..right = v}"
    assert _refutes(
        [f"ALL m. m ~= null & (p, m) : {rel}^* --> m..key : content",
         "p ~= null", "m2 ~= null", f"(p..left, m2) : {rel}^*"],
        "m2..key : content",
    )
    assert _refutes(
        [f"ALL m. m ~= null & (p, m) : {rel}^* --> m..key : content",
         "p ~= null", "m2 ~= null", f"(p..right, m2) : {rel}^*"],
        "m2..key : content",
    )


def test_union_backbone_not_unsound():
    rel = "{(u, v). u..left = v | u..right = v}"
    assert not _refutes([], f"(x, y) : {rel}^*", timeout=2.0)


def test_union_backbone_incarnation_fields_translate():
    """Havocked field incarnations (left#2) appear in loop-exit obligations;
    the axiom instantiation must survive names the parser cannot read."""
    from repro.form import ast as F
    from repro.vcgen.sequent import Labeled, Sequent

    def rel_elem(fld_a, fld_b, x, y):
        params = (("u", None), ("v", None))
        body = F.Or((
            F.Eq(F.App(F.Var(fld_a), (F.Var("u"),)), F.Var("v")),
            F.Eq(F.App(F.Var(fld_b), (F.Var("u"),)), F.Var("v")),
        ))
        rel = F.app("rtrancl", F.SetCompr(params, body))
        return F.app("elem", F.TupleTerm((F.Var(x), F.Var(y))), rel)

    inv = F.Quant(
        "ALL", (("m", None),),
        F.mk_implies(
            F.mk_and((F.Not(F.Eq(F.Var("m"), F.NULL)), rel_elem("left#2", "right#5", "root", "m"))),
            F.app("elem", F.Var("m"), F.Var("alloc")),
        ),
    )
    seq = Sequent(
        assumptions=(
            Labeled(inv),
            Labeled(F.Not(F.Eq(F.Var("w"), F.NULL))),
            Labeled(rel_elem("left#2", "right#5", "root", "w")),
        ),
        goal=Labeled(F.app("elem", F.Var("w"), F.Var("alloc"))),
    )
    translation = translate_sequent(seq)
    assert translation.used_reachability
    assert FirstOrderProver(timeout=8.0).prove(seq).proved


def test_written_backbone_escape_and_suffix():
    """Reachability through a fieldWrite-updated backbone: the escape/suffix
    bridge axioms discharge the put/insert invariant-exit shape."""
    wrel = "{(u, v). (fieldWrite next fresh first) u = v}"
    rel = "{(u, v). u..next = v}"
    common = [
        f"ALL m. m ~= null & (first, m) : {rel}^* --> m : alloc",
        "fresh ~= null", "fresh ~: alloc", "m2 ~= null",
        f"(fresh, m2) : {wrel}^*",
    ]
    # Everything reachable from the fresh head is the head itself or an old
    # (allocated) node.
    assert _refutes(common, "m2 : alloc Un {fresh}", timeout=30.0)


def test_unrecognised_relations_get_distinct_predicates():
    """Reachability over one unrecognised relation must never prove
    reachability over a different one (they are reified as *distinct*
    uninterpreted predicates)."""
    assert not _refutes(
        ["(x, y) : {(u, v). u..next = v..prev}^*"],
        "(x, y) : {(u, v). P u v}^*",
        timeout=2.0,
    )
    # Strictness is part of the identity: R^+ and R^* must not collapse.
    assert not _refutes(
        ["(x, y) : {(u, v). u..next = v..prev}^*"],
        "(x, y) : {(u, v). u..next = v..prev}^+",
        timeout=2.0,
    )
    # The same unrecognised relation still unifies with itself.
    assert _refutes(
        ["(x, y) : {(u, v). u..next = v..prev}^*"],
        "(x, y) : {(u, v). u..next = v..prev}^*",
    )


def test_written_backbone_not_unsound():
    wrel = "{(u, v). (fieldWrite next a b) u = v}"
    assert not _refutes([], f"(x, y) : {wrel}^*", timeout=2.0)
    # The written closure must not collapse to the base closure.
    rel = "{(u, v). u..next = v}"
    assert not _refutes(
        [f"(x, y) : {wrel}^*"], f"(x, y) : {rel}^*", timeout=2.0
    )


def test_translation_produces_clauses():
    seq = sequent(
        [parse("ALL x. x : S --> x..next : S"), parse("a : S")],
        parse("a..next : S"),
    )
    translation = translate_sequent(seq)
    assert translation.clauses
    # The goal is negated, so at least one clause holds the negated goal atom.
    assert any(not lit.positive and lit.pred == "elem" for c in translation.clauses for lit in c)


def test_clausifier_skolemizes_existentials():
    clausifier = Clausifier()
    clauses = clausifier.clausify(parse("EX x. p x"))
    assert len(clauses) == 1
    literal = clauses[0].literals[0]
    assert literal.pred == "p"
    assert literal.args[0].func.startswith("sk_")


def test_clausifier_distributes_disjunction():
    clausifier = Clausifier()
    clauses = clausifier.clausify(parse("(p & q) | r"))
    assert len(clauses) == 2


def test_empty_clause_detected_immediately():
    engine = ResolutionProver()
    clausifier = Clausifier()
    clauses = clausifier.clausify(parse("p")) + clausifier.clausify(parse("~p"))
    assert engine.refute(clauses).refuted


def test_saturation_terminates_on_satisfiable_input():
    engine = ResolutionProver(max_seconds=2.0, max_processed=200)
    clausifier = Clausifier()
    clauses = clausifier.clausify(parse("p a")) + clausifier.clausify(parse("q b"))
    result = engine.refute(clauses)
    assert not result.refuted
