"""The resolution prover on classic first-order problems, and the HOL-to-FOL
translation on sequents with reachability."""

import pytest

from repro.fol.clausify import Clausifier
from repro.fol.hol2fol import translate_sequent
from repro.fol.prover import FirstOrderProver
from repro.fol.resolution import ResolutionProver
from repro.form.parser import parse_formula as parse
from repro.vcgen.sequent import sequent


def _refutes(assumptions, goal, timeout=8.0):
    seq = sequent([parse(a) for a in assumptions], parse(goal))
    return FirstOrderProver(timeout=timeout).prove(seq).proved


# -- valid entailments the prover must find ---------------------------------------

VALID = [
    (["p"], "p"),
    (["p --> q", "p"], "q"),
    (["ALL x. p x --> q x", "p a"], "q a"),
    (["ALL x. p x"], "p a"),
    (["ALL x y. r x y --> r y x", "r a b"], "r b a"),
    (["ALL x y z. r x y & r y z --> r x z", "r a b", "r b c"], "r a c"),
    (["a = b", "p a"], "p b"),
    (["a = b", "b = c"], "a = c"),
    (["f a = b", "a = c"], "f c = b"),
    (["ALL x. x : S --> x : T", "a : S"], "a : T"),
    (["EX x. p x", "ALL x. p x --> q x"], "EX x. q x"),
    (["ALL x. p x | q x", "ALL x. ~ p x"], "q a"),
    ([], "p a --> p a"),
    ([], "(ALL x. p x) --> p a"),
]


@pytest.mark.parametrize("assumptions, goal", VALID)
def test_proves_valid_entailments(assumptions, goal):
    assert _refutes(assumptions, goal)


# -- invalid entailments must never be "proved" (soundness) -------------------------

INVALID = [
    (["p --> q", "q"], "p"),
    (["p a"], "p b"),
    (["ALL x. p x --> q x"], "q a"),
    (["a = b"], "a = c"),
    ([], "p a"),
    (["EX x. p x"], "p a"),
    (["r a b", "r b c"], "r a c"),
]


@pytest.mark.parametrize("assumptions, goal", INVALID)
def test_never_proves_invalid_entailments(assumptions, goal):
    assert not _refutes(assumptions, goal, timeout=2.0)


# -- reachability translation ---------------------------------------------------------


def test_reachability_axioms_prove_step():
    assumptions = ["(root, x) : {(u, v). u..next = v}^*"]
    goal = "(root, x..next) : {(u, v). u..next = v}^*"
    # reach(root, x) and the step/transitivity axioms give reach(root, x.next).
    assert _refutes(assumptions, goal)


def test_reachability_reflexivity():
    assert _refutes([], "(x, x) : {(u, v). u..next = v}^*")


def test_reachability_not_assumed_invalid():
    assert not _refutes([], "(x, y) : {(u, v). u..next = v}^*", timeout=2.0)


def test_translation_produces_clauses():
    seq = sequent(
        [parse("ALL x. x : S --> x..next : S"), parse("a : S")],
        parse("a..next : S"),
    )
    translation = translate_sequent(seq)
    assert translation.clauses
    # The goal is negated, so at least one clause holds the negated goal atom.
    assert any(not lit.positive and lit.pred == "elem" for c in translation.clauses for lit in c)


def test_clausifier_skolemizes_existentials():
    clausifier = Clausifier()
    clauses = clausifier.clausify(parse("EX x. p x"))
    assert len(clauses) == 1
    literal = clauses[0].literals[0]
    assert literal.pred == "p"
    assert literal.args[0].func.startswith("sk_")


def test_clausifier_distributes_disjunction():
    clausifier = Clausifier()
    clauses = clausifier.clausify(parse("(p & q) | r"))
    assert len(clauses) == 2


def test_empty_clause_detected_immediately():
    engine = ResolutionProver()
    clausifier = Clausifier()
    clauses = clausifier.clausify(parse("p")) + clausifier.clausify(parse("~p"))
    assert engine.refute(clauses).refuted


def test_saturation_terminates_on_satisfiable_input():
    engine = ResolutionProver(max_seconds=2.0, max_processed=200)
    clausifier = Clausifier()
    clauses = clausifier.clausify(parse("p a")) + clausifier.clausify(parse("q b"))
    result = engine.refute(clauses)
    assert not result.refuted
