"""Source positions: the lexer stamps every token with line/column, syntax
and resolve errors carry located coordinates, and spec declarations map back
to absolute source lines via the spec-block line offsets."""

import pytest

from repro.java.lexer import JavaSyntaxError, tokenize
from repro.java.parser import parse_java
from repro.java.resolver import ResolveError, parse_program


SOURCE = """\
class Box {
    private static Object item;
    /*: public static ghost specvar full :: "bool" = "False";
        invariant Sane: "full --> item ~= null";
    */
    public static void put(Object x)
    /*: requires "x ~= null"
        modifies full
        ensures "full" */
    {
        item = x;
        //: full := "True";
    }
}
"""


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------


def test_tokens_carry_line_and_column():
    tokens = tokenize("class Box {\n    private static Object item;\n}\n")
    cls = tokens[0]
    assert (cls.kind, cls.value, cls.line, cls.column) == ("keyword", "class", 1, 1)
    name = tokens[1]
    assert (name.value, name.line, name.column) == ("Box", 1, 7)
    private = next(t for t in tokens if t.value == "private")
    assert (private.line, private.column) == (2, 5)


def test_spec_token_points_at_comment_content():
    tokens = tokenize(SOURCE)
    specs = [t for t in tokens if t.kind == "spec"]
    # The class block's token points at its first content line (line 3).
    assert specs[0].value.startswith("public static ghost specvar full")
    assert specs[0].line == 3
    # The contract comment starts on line 7, the ghost assign on line 12.
    assert specs[1].line == 7
    assert specs[2].line == 12


def test_lexer_error_is_located():
    with pytest.raises(JavaSyntaxError) as excinfo:
        tokenize("class Box {\n    int x = `;\n}\n")
    assert excinfo.value.line == 2
    assert excinfo.value.column > 0
    assert f"(line 2:{excinfo.value.column})" in str(excinfo.value)


def test_unterminated_comment_is_located():
    with pytest.raises(JavaSyntaxError) as excinfo:
        tokenize("class Box {\n}\n/* never closed")
    assert excinfo.value.line == 3


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def test_syntax_error_carries_token_position():
    with pytest.raises(JavaSyntaxError) as excinfo:
        parse_java("class Box {\n    public static void f()\n    )\n}\n")
    assert excinfo.value.line == 3
    assert excinfo.value.column == 5
    assert "(line 3:5)" in str(excinfo.value)


def test_class_and_method_lines():
    unit = parse_java(SOURCE)
    cls = unit.class_named("Box")
    assert cls.line == 1
    method = cls.methods[0]
    assert method.name == "put" and method.line == 6
    assert method.contract_line == 7


def test_spec_block_lines_parallel_spec_blocks():
    cls = parse_java(SOURCE).class_named("Box")
    assert len(cls.spec_blocks) == len(cls.spec_block_lines)
    assert cls.spec_block_line(0) == 3
    assert cls.spec_block_line(99) == 0  # out of range → unknown


# ---------------------------------------------------------------------------
# Spec declarations: absolute lines via base_line offsets
# ---------------------------------------------------------------------------


def test_spec_items_carry_absolute_lines():
    program = parse_program(SOURCE)
    spec = program.class_specs["Box"]
    assert spec.specvars[0].name == "full" and spec.specvars[0].line == 3
    assert spec.invariants[0].name == "Sane" and spec.invariants[0].line == 4


def test_contract_clause_lines():
    program = parse_program(SOURCE)
    contract = program.method("Box", "put").contract
    assert contract.requires_line == 7
    assert contract.modifies_line == 8
    assert contract.ensures_line == 9


# ---------------------------------------------------------------------------
# Resolver
# ---------------------------------------------------------------------------


def test_resolve_error_is_located():
    bad = SOURCE.replace('invariant Sane: "full --> item ~= null"',
                         'invariant Sane: "full --> --> item"')
    with pytest.raises(ResolveError) as excinfo:
        parse_program(bad)
    assert excinfo.value.line == 4
    assert "line 4" in str(excinfo.value)
