"""Mini-Java lexer, parser and resolver."""

import pytest

from repro.form.types import INT, OBJ, OBJ_SET, TFun, TSet
from repro.java import ast as J
from repro.java.lexer import JavaSyntaxError, tokenize
from repro.java.parser import parse_java
from repro.java.resolver import parse_program
from repro.spec import parse_class_spec, parse_contract, parse_statement
from repro.spec.contracts import AssertSpec, GhostAssign, NoteSpec

EXAMPLE = """
public /*: claimedby List */ class Node {
    public Object data; public Node next;
}
class List {
    private static Node first;
    private static int size;

    /*: public static ghost specvar content :: "objset" = "{}";
        invariant SizeInv: "size = card content";
        invariant NextInv: "ALL n. n : content --> n ~= null";
    */

    public static void add(Object x)
    /*: requires "x ~= null & x ~: content"
        modifies content
        ensures "content = old content Un {x}" */
    {
        Node n = new Node();
        n.next = first;
        n.data = x;
        first = n;
        size = size + 1;
        //: content := "{x} Un content";
    }

    public static boolean member(Object x)
    /*: requires "x ~= null"
        ensures "(result = true) = (x : content)" */
    {
        Node current = first;
        while /*: inv "current = current" */ (current != null) {
            if (current.data == x) { return true; }
            current = current.next;
        }
        return false;
    }
}
"""


# -- lexer -------------------------------------------------------------------------


def test_tokenize_keywords_and_idents():
    tokens = tokenize("class Foo { int x; }")
    kinds = [t.kind for t in tokens]
    assert kinds == ["keyword", "ident", "symbol", "keyword", "ident", "symbol", "symbol"]


def test_tokenize_spec_comments():
    tokens = tokenize('x = 1; //: content := "{x}"\n y = 2; /*: assert "x = 1" */')
    specs = [t for t in tokens if t.kind == "spec"]
    assert len(specs) == 2
    assert 'content := "{x}"' in specs[0].value


def test_tokenize_skips_ordinary_comments():
    tokens = tokenize("/* nothing */ x // more\n = 1;")
    assert all(t.kind != "spec" for t in tokens)


def test_tokenize_reports_line_numbers():
    tokens = tokenize("x;\ny;\nz;")
    assert [t.line for t in tokens if t.kind == "ident"] == [1, 2, 3]


def test_tokenize_error():
    with pytest.raises(JavaSyntaxError):
        tokenize("x @ y")


# -- parser ------------------------------------------------------------------------


def test_parse_classes_and_members():
    unit = parse_java(EXAMPLE)
    assert [c.name for c in unit.classes] == ["Node", "List"]
    node = unit.class_named("Node")
    assert {f.name for f in node.fields} == {"data", "next"}
    assert node.claimed_by == "List"
    lst = unit.class_named("List")
    assert {m.name for m in lst.methods} == {"add", "member"}
    add = [m for m in lst.methods if m.name == "add"][0]
    assert add.is_static and add.params == [("Object", "x")]
    assert "requires" in add.contract_text


def test_parse_statements_structure():
    unit = parse_java(EXAMPLE)
    add = [m for m in unit.class_named("List").methods if m.name == "add"][0]
    kinds = [type(s).__name__ for s in add.body.statements]
    assert kinds == ["LocalDecl", "Assign", "Assign", "Assign", "Assign", "SpecStmt"]


def test_parse_while_with_invariant():
    unit = parse_java(EXAMPLE)
    member = [m for m in unit.class_named("List").methods if m.name == "member"][0]
    loops = [s for s in member.body.statements if isinstance(s, J.While)]
    assert len(loops) == 1
    assert loops[0].invariants


def test_parse_new_array():
    unit = parse_java("class A { static Object t; static void init(int n) { t = new Object[n]; } }")
    body = unit.class_named("A").methods[0].body
    assign = body.statements[0]
    assert isinstance(assign.value, J.NewArray)


def test_parse_array_access():
    unit = parse_java("class A { static Object t; static Object get(int i) { return t[i]; } }")
    ret = unit.class_named("A").methods[0].body.statements[0]
    assert isinstance(ret.value, J.ArrayAccess)


def test_parse_error_reported():
    with pytest.raises(JavaSyntaxError):
        parse_java("class A { void broken( { } }")


# -- specification comment parsing ----------------------------------------------------


def test_parse_contract():
    contract = parse_contract('requires "x ~= null" modifies content, size ensures "content = old content"')
    assert contract.requires_text == "x ~= null"
    assert contract.modifies == ["content", "size"]
    assert contract.ensures_text == "content = old content"


def test_parse_contract_empty():
    contract = parse_contract("")
    assert contract.requires_text == "True"
    assert contract.ensures_text == "True"


def test_parse_class_spec():
    spec = parse_class_spec(
        [
            'public static ghost specvar content :: "objset" = "{}";'
            ' invariant SizeInv: "size = card content";'
            ' vardefs "abstracted == content Un {null}";'
        ]
    )
    assert spec.specvars[0].name == "content"
    assert spec.specvars[0].is_ghost and spec.specvars[0].is_public
    assert spec.invariants[0].name == "SizeInv"
    assert spec.vardefs[0].name == "abstracted"


def test_parse_ghost_assignment_statement():
    (stmt,) = parse_statement('content := "{x} Un content"')
    assert isinstance(stmt, GhostAssign)
    assert stmt.target_text == "content"


def test_parse_field_ghost_assignment():
    (stmt,) = parse_statement('n..cnt := "{(k, v)} Un content"')
    assert isinstance(stmt, GhostAssign)
    assert stmt.target_text == "n..cnt"


def test_parse_note_with_hints():
    (stmt,) = parse_statement('note Fresh: "x ~: content" by pre, SizeInv')
    assert isinstance(stmt, NoteSpec)
    assert stmt.label == "Fresh"
    assert stmt.hints == ["pre", "SizeInv"]


def test_parse_assert_statement():
    (stmt,) = parse_statement('assert "x ~= null"')
    assert isinstance(stmt, AssertSpec)


# -- resolver ----------------------------------------------------------------------------


def test_resolver_builds_heap_model():
    program = parse_program(EXAMPLE)
    assert program.env.lookup("Node") == TSet(OBJ)
    assert program.env.lookup("next") == TFun(OBJ, OBJ)   # instance field
    assert program.env.lookup("first") == OBJ              # static field
    assert program.env.lookup("size") == INT
    assert program.env.lookup("content") == OBJ_SET
    assert "content" in program.ghost_vars
    assert "content" in program.public_specvars
    assert len(program.invariants) == 2


def test_resolver_methods_and_contracts():
    program = parse_program(EXAMPLE)
    info = program.method("List", "add")
    assert info.contract.modifies == ["content"]
    with pytest.raises(KeyError):
        program.method("List", "nonexistent")


def test_resolver_normalises_qualified_names():
    program = parse_program(EXAMPLE)
    formula = program.parse("tree [Node.next]")
    assert "Node.next" not in repr(formula)


def test_state_variables_include_fields_and_specvars():
    program = parse_program(EXAMPLE)
    state = program.state_variables()
    assert {"first", "next", "data", "size", "content", "alloc"} <= state
