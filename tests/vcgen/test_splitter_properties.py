"""Splitter invariants: label preservation, exactly-once counting of
sequents proved during splitting, and deterministic fresh-variable naming
(the property that makes sequent digests stable cache keys)."""

from repro.form.parser import parse_formula as parse
from repro.vcgen.sequent import Labeled
from repro.vcgen.splitter import SplitResult, split_goal


def _split(assumption_texts, goal_text, goal_labels=("post",)):
    assumptions = tuple(Labeled(parse(text), ("ctx",)) for text in assumption_texts)
    return split_goal(assumptions, Labeled(parse(goal_text), goal_labels))


# -- label preservation -------------------------------------------------------------


def test_conjunction_split_preserves_goal_labels():
    result = _split(["p"], "a = b & c = d & e = f")
    assert len(result.sequents) == 3
    for seq in result.sequents:
        assert seq.goal.labels == ("post",)
        assert all(a.labels == ("ctx",) for a in seq.assumptions)


def test_implication_split_labels_hypotheses():
    result = _split([], "p --> q")
    (seq,) = result.sequents
    assert seq.goal.labels == ("post",)
    # The moved hypothesis keeps the goal labels plus the "hyp" marker.
    assert seq.assumptions[-1].labels == ("post", "hyp")
    assert seq.assumptions[-1].formula == parse("p")


def test_forall_split_preserves_labels_and_renames():
    result = _split([], "ALL x. x : S")
    (seq,) = result.sequents
    assert seq.goal.labels == ("post",)
    # The bound variable was renamed to a fresh x$n.
    printed = str(seq.goal)
    assert "x$" in printed


# -- proved_during_splitting counted exactly once -----------------------------------


def test_true_goal_counted_once():
    result = _split([], "True")
    assert result.proved_during_splitting == 1
    assert result.sequents == []


def test_goal_in_assumptions_counted_once():
    result = _split(["p"], "p")
    assert result.proved_during_splitting == 1
    assert result.sequents == []


def test_conjunction_counts_each_trivial_conjunct_once():
    # p is assumed; q is not.  Of the three conjuncts (p, True, q) exactly
    # two are discharged during splitting and one survives as a sequent.
    result = _split(["p"], "p & True & q")
    assert result.proved_during_splitting == 2
    assert len(result.sequents) == 1
    assert result.sequents[0].goal.formula == parse("q")


def test_total_obligations_conserved():
    # Every conjunct is either discharged during splitting or becomes a
    # sequent: nothing is dropped, nothing is counted twice.
    result = _split(["p"], "p & (q --> q2) & True & r & (ALL x. x : S)")
    assert result.proved_during_splitting + len(result.sequents) == 5
    # (the p conjunct and True are discharged; q-->q2, r and the ALL each
    # yield one sequent: 2 discharged + 3 sequents)
    assert result.proved_during_splitting == 2
    assert len(result.sequents) == 3


def test_shared_result_accumulates_without_double_counting():
    result = SplitResult()
    split_goal((), Labeled(parse("True")), result=result)
    split_goal((Labeled(parse("p")),), Labeled(parse("p")), result=result)
    split_goal((), Labeled(parse("q")), result=result)
    assert result.proved_during_splitting == 2
    assert len(result.sequents) == 1


# -- deterministic fresh names ------------------------------------------------------


def test_fresh_names_deterministic_per_split():
    goal = "ALL x. ALL y. (x, y) : R --> (y, x) : S"
    first = _split([], goal)
    second = _split([], goal)
    assert [str(s.goal) for s in first.sequents] == [str(s.goal) for s in second.sequents]
    assert [s.digest() for s in first.sequents] == [s.digest() for s in second.sequents]


def test_fresh_counter_scoped_per_result():
    # Two independent SplitResults restart numbering: no global counter leaks
    # between verification conditions.
    one = _split([], "ALL x. x : S")
    two = _split([], "ALL x. x : S")
    assert str(one.sequents[0].goal) == str(two.sequents[0].goal)
    assert "x$1" in str(one.sequents[0].goal)
