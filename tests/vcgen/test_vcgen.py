"""VC generation and splitting (Figures 10 and 13)."""

import pytest

from repro.form import ast as F
from repro.form.parser import parse_formula as parse
from repro.form.typecheck import standard_env
from repro.java.resolver import parse_program
from repro.vcgen.sequent import Labeled, Sequent, sequent
from repro.vcgen.splitter import split_goal
from repro.vcgen.vcgen import generate_method_vc

SOURCE = """
class Counter {
    private static int count;
    /*: public static ghost specvar total :: "int" = "0";
        invariant TotalInv: "total = count";
    */
    public static void increment()
    /*: requires "True" modifies total ensures "total = old total + 1" */
    {
        count = count + 1;
        //: total := "total + 1";
    }

    public static void reset()
    /*: requires "True" modifies total ensures "total = 0" */
    {
        count = 0;
        //: total := "0";
    }

    public static int get()
    /*: requires "True" ensures "result = total" */
    {
        return count;
    }

    public static void conditional(int x)
    /*: requires "True" modifies total ensures "total >= old total" */
    {
        if (x > 0) {
            count = count + x;
            //: total := "total + x";
        } else {
            count = count;
        }
    }
}
"""


# -- splitting (Figure 13) ------------------------------------------------------------


def test_split_conjunction_goal():
    result = split_goal((), Labeled(parse("p & q & r")), standard_env())
    assert len(result.sequents) == 3


def test_split_implication_moves_hypotheses():
    result = split_goal((), Labeled(parse("p & q --> r")), standard_env())
    assert len(result.sequents) == 1
    assumptions = [a.formula for a in result.sequents[0].assumptions]
    assert parse("p") in assumptions and parse("q") in assumptions


def test_split_universal_freshens_variable():
    result = split_goal((), Labeled(parse("ALL x. x : S --> x : T")), standard_env())
    assert len(result.sequents) == 1
    goal = result.sequents[0].goal.formula
    assert not isinstance(goal, F.Quant)


def test_split_eliminates_goal_present_in_assumptions():
    assumption = Labeled(parse("p"), ("h",))
    result = split_goal((assumption,), Labeled(parse("p & q")), standard_env())
    assert result.proved_during_splitting == 1
    assert len(result.sequents) == 1


def test_split_true_goal_counts_as_proved():
    result = split_goal((), Labeled(F.TRUE), standard_env())
    assert result.proved_during_splitting == 1
    assert not result.sequents


def test_split_preserves_labels_and_hints():
    result = split_goal(
        (Labeled(parse("p"), ("pre",)),),
        Labeled(parse("q & r"), ("post",)),
        standard_env(),
        hints=("pre",),
        origin="Class.method:post",
    )
    for seq in result.sequents:
        assert seq.goal.labels == ("post",)
        assert seq.hints == ("pre",)
        assert seq.origin == "Class.method:post"


# -- sequents ---------------------------------------------------------------------------


def test_sequent_fingerprint_is_stable_and_distinguishing():
    s1 = sequent([parse("p")], parse("q"))
    s2 = sequent([parse("p")], parse("q"))
    s3 = sequent([parse("p")], parse("r"))
    assert s1.fingerprint() == s2.fingerprint()
    assert s1.fingerprint() != s3.fingerprint()


def test_sequent_to_implication():
    s = sequent([parse("p"), parse("q")], parse("r"))
    assert isinstance(s.to_implication(), F.Implies)


def test_sequent_pretty_lists_assumptions():
    s = sequent([parse("p")], parse("q"), origin="X.m:post")
    text = s.pretty()
    assert "X.m:post" in text and "p" in text and "q" in text


# -- per-method VC generation --------------------------------------------------------------


@pytest.fixture(scope="module")
def program():
    return parse_program(SOURCE)


def test_vc_contains_postcondition_obligation(program):
    vc = generate_method_vc(program, "Counter", "increment")
    origins = {s.origin for s in vc.sequents}
    assert any("post" in origin for origin in origins) or vc.proved_during_splitting > 0


def test_vc_contains_invariant_obligation(program):
    vc = generate_method_vc(program, "Counter", "increment")
    labels = {label for s in vc.sequents for label in s.goal.labels}
    assert any("inv-exit" in label for label in labels) or vc.proved_during_splitting > 0


def test_vc_assumes_precondition_and_invariants(program):
    vc = generate_method_vc(program, "Counter", "get")
    for s in vc.sequents:
        labels = {label for a in s.assumptions for label in a.labels}
        assert any(label.startswith("inv:") for label in labels)


def test_old_variables_are_snapshotted(program):
    vc = generate_method_vc(program, "Counter", "increment")
    found_old = False
    for s in vc.sequents:
        for a in s.assumptions:
            if any(label.startswith("old:") for label in a.labels):
                found_old = True
    assert found_old


def test_branching_method_generates_obligations_for_both_paths(program):
    vc = generate_method_vc(program, "Counter", "conditional")
    assert vc.paths >= 2
    assert len(vc.sequents) >= 2


def test_frame_condition_added_for_unmodified_public_specvars(program):
    # `get` does not list `total` in modifies, so the frame conjunct
    # total = old total is part of its postcondition obligations.
    vc = generate_method_vc(program, "Counter", "get", include_frame=True)
    frameless = generate_method_vc(program, "Counter", "get", include_frame=False)
    assert vc.proved_during_splitting + len(vc.sequents) >= frameless.proved_during_splitting + len(
        frameless.sequents
    )


def test_vc_generation_is_deterministic(program):
    first = generate_method_vc(program, "Counter", "increment")
    second = generate_method_vc(program, "Counter", "increment")
    assert len(first.sequents) == len(second.sequents)
    assert [s.origin for s in first.sequents] == [s.origin for s in second.sequents]
