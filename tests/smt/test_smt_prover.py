"""The SMT-role prover on ground and quantified sequents (validity and soundness)."""

import pytest

from repro.form.parser import parse_formula as parse
from repro.smt.prover import SmtProver
from repro.smt.sat import SatSolver
from repro.vcgen.sequent import sequent


def _proves(assumptions, goal, timeout=4.0):
    seq = sequent([parse(a) for a in assumptions], parse(goal))
    return SmtProver(timeout=timeout).prove(seq).proved


VALID = [
    # propositional / equality
    (["p", "p --> q"], "q"),
    (["a = b", "b = c"], "a = c"),
    (["a = b", "p a"], "p b"),
    (["a ~= b", "a = c"], "c ~= b"),
    # heap updates
    (["n1 ~= n2", "(fieldWrite next n1 root) n2 = q"], "next n2 = q"),
    ([], "(fieldWrite next n root) n = root"),
    (["(arrayWrite arrayState a i v) a i = w"], "v = w"),
    # arithmetic
    (["x < y", "y < z"], "x < z"),
    (["size = 0"], "size + 1 = 1"),
    (["0 <= i", "i < n", "n <= m"], "i < m"),
    # quantifier instantiation
    (["ALL x. x : S --> x ~= null", "a : S"], "a ~= null"),
    (["ALL x. x : S --> x..f : S", "a : S"], "a..f..f : S"),
    (["ALL x. p x"], "p a & p b"),
    # membership after expansion
    (["x : A"], "x : A Un B"),
    (["x : A Int B"], "x : A"),
    (["x ~: A Un B"], "x ~: A"),
    (["content1 = content Un {e}", "x : content"], "x : content1"),
]


@pytest.mark.parametrize("assumptions, goal", VALID)
def test_proves_valid_sequents(assumptions, goal):
    assert _proves(assumptions, goal)


INVALID = [
    (["p --> q", "q"], "p"),
    (["a = b"], "a = c"),
    ([], "x < y"),
    (["x <= y"], "x < y"),
    (["ALL x. x : S --> x ~= null"], "a ~= null"),
    (["x : A Un B"], "x : A"),
    (["(fieldWrite next n1 root) n2 = q"], "next n2 = q"),  # n1 may equal n2
    (["content1 = content Un {e}"], "x : content1"),
]


@pytest.mark.parametrize("assumptions, goal", INVALID)
def test_never_proves_invalid_sequents(assumptions, goal):
    assert not _proves(assumptions, goal, timeout=2.5)


# -- the SAT core ------------------------------------------------------------------------


def test_sat_simple_satisfiable():
    solver = SatSolver(2)
    solver.add_clauses([[1, 2], [-1, 2]])
    result = solver.solve()
    assert result.satisfiable
    assert result.assignment[2] is True


def test_sat_simple_unsatisfiable():
    solver = SatSolver(1)
    solver.add_clauses([[1], [-1]])
    assert not solver.solve().satisfiable


def test_sat_unit_propagation_chain():
    solver = SatSolver(4)
    solver.add_clauses([[1], [-1, 2], [-2, 3], [-3, 4], [-4]])
    assert not solver.solve().satisfiable


def test_sat_incremental_blocking():
    solver = SatSolver(2)
    solver.add_clauses([[1, 2]])
    first = solver.solve()
    assert first.satisfiable
    blocking = [-(v if val else -v) for v, val in first.assignment.items()]
    solver.add_clause(blocking)
    second = solver.solve()
    # Still satisfiable (a different assignment exists for [1, 2]).
    assert second.satisfiable
