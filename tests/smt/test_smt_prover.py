"""The SMT-role prover on ground and quantified sequents (validity and soundness)."""

import pytest

from repro.form.parser import parse_formula as parse
from repro.smt.prover import SmtProver
from repro.smt.sat import SatSolver
from repro.vcgen.sequent import sequent


def _proves(assumptions, goal, timeout=4.0):
    seq = sequent([parse(a) for a in assumptions], parse(goal))
    return SmtProver(timeout=timeout).prove(seq).proved


VALID = [
    # propositional / equality
    (["p", "p --> q"], "q"),
    (["a = b", "b = c"], "a = c"),
    (["a = b", "p a"], "p b"),
    (["a ~= b", "a = c"], "c ~= b"),
    # heap updates
    (["n1 ~= n2", "(fieldWrite next n1 root) n2 = q"], "next n2 = q"),
    ([], "(fieldWrite next n root) n = root"),
    (["(arrayWrite arrayState a i v) a i = w"], "v = w"),
    # arithmetic
    (["x < y", "y < z"], "x < z"),
    (["size = 0"], "size + 1 = 1"),
    (["0 <= i", "i < n", "n <= m"], "i < m"),
    # quantifier instantiation
    (["ALL x. x : S --> x ~= null", "a : S"], "a ~= null"),
    (["ALL x. x : S --> x..f : S", "a : S"], "a..f..f : S"),
    (["ALL x. p x"], "p a & p b"),
    # membership after expansion
    (["x : A"], "x : A Un B"),
    (["x : A Int B"], "x : A"),
    (["x ~: A Un B"], "x ~: A"),
    (["content1 = content Un {e}", "x : content"], "x : content1"),
]


@pytest.mark.parametrize("assumptions, goal", VALID)
def test_proves_valid_sequents(assumptions, goal):
    assert _proves(assumptions, goal)


INVALID = [
    (["p --> q", "q"], "p"),
    (["a = b"], "a = c"),
    ([], "x < y"),
    (["x <= y"], "x < y"),
    (["ALL x. x : S --> x ~= null"], "a ~= null"),
    (["x : A Un B"], "x : A"),
    (["(fieldWrite next n1 root) n2 = q"], "next n2 = q"),  # n1 may equal n2
    (["content1 = content Un {e}"], "x : content1"),
]


@pytest.mark.parametrize("assumptions, goal", INVALID)
def test_never_proves_invalid_sequents(assumptions, goal):
    assert not _proves(assumptions, goal, timeout=2.5)


# -- the SAT core ------------------------------------------------------------------------


def test_sat_simple_satisfiable():
    solver = SatSolver(2)
    solver.add_clauses([[1, 2], [-1, 2]])
    result = solver.solve()
    assert result.satisfiable
    assert result.assignment[2] is True


def test_sat_simple_unsatisfiable():
    solver = SatSolver(1)
    solver.add_clauses([[1], [-1]])
    assert not solver.solve().satisfiable


def test_sat_unit_propagation_chain():
    solver = SatSolver(4)
    solver.add_clauses([[1], [-1, 2], [-2, 3], [-3, 4], [-4]])
    assert not solver.solve().satisfiable


def test_sat_incremental_blocking():
    solver = SatSolver(2)
    solver.add_clauses([[1, 2]])
    first = solver.solve()
    assert first.satisfiable
    blocking = [-(v if val else -v) for v, val in first.assignment.items()]
    solver.add_clause(blocking)
    second = solver.solve()
    # Still satisfiable (a different assignment exists for [1, 2]).
    assert second.satisfiable


def _brute_force_satisfiable(num_vars, clauses):
    return any(
        all(
            any((lit > 0) == bool((model >> (abs(lit) - 1)) & 1) for lit in clause)
            for clause in clauses
        )
        for model in range(1 << num_vars)
    )


@pytest.mark.parametrize("seed", range(12))
def test_sat_agrees_with_brute_force_on_random_cnfs(seed):
    """Differential fuzz of the CDCL core: verdicts match exhaustive model
    enumeration, returned models really satisfy the clauses, and re-solving
    (with the persisted learned clauses) agrees — including after a
    blocking clause, the lazy SMT loop's usage pattern."""
    import random

    rng = random.Random(seed)
    for _ in range(60):
        num_vars = rng.randint(1, 9)
        clauses = [
            [rng.choice([-1, 1]) * rng.randint(1, num_vars) for _ in range(rng.randint(1, 4))]
            for _ in range(rng.randint(1, 30))
        ]
        solver = SatSolver(num_vars)
        solver.add_clauses(clauses)
        expected = _brute_force_satisfiable(num_vars, clauses)
        result = solver.solve()
        assert result.satisfiable == expected, (seed, clauses)
        if not expected:
            continue
        model = result.assignment
        assert all(
            any((lit > 0) == model.get(abs(lit), False) for lit in clause)
            for clause in clauses
        ), (seed, clauses, model)
        # Incremental blocking: the remaining problem must still agree.
        blocking = [-(v if val else -v) for v, val in model.items()]
        solver.add_clause(blocking)
        assert solver.solve().satisfiable == _brute_force_satisfiable(
            num_vars, clauses + [blocking]
        ), (seed, clauses, blocking)


@pytest.mark.parametrize("seed", range(8))
def test_sat_incremental_trail_agrees_with_scratch(seed):
    """Differential test of the persistent-trail engine: one incremental
    solver fed a stream of blocking clauses answers exactly like a fresh
    from-scratch solver rebuilt on the accumulated clause set each step —
    the lazy DPLL(T) loop's usage pattern."""
    import random

    rng = random.Random(seed)
    for _ in range(25):
        num_vars = rng.randint(2, 9)
        clauses = [
            [rng.choice([-1, 1]) * rng.randint(1, num_vars) for _ in range(rng.randint(1, 4))]
            for _ in range(rng.randint(1, 25))
        ]
        incremental = SatSolver(num_vars, incremental=True)
        incremental.add_clauses(clauses)
        accumulated = list(clauses)
        for _step in range(6):
            scratch = SatSolver(num_vars, incremental=False)
            scratch.add_clauses(accumulated)
            live = incremental.solve()
            reference = scratch.solve()
            assert live.satisfiable == reference.satisfiable, (seed, accumulated)
            assert live.satisfiable == _brute_force_satisfiable(num_vars, accumulated)
            if not live.satisfiable:
                break
            model = live.assignment
            assert all(
                any((lit > 0) == model.get(abs(lit), False) for lit in clause)
                for clause in accumulated
            ), (seed, accumulated, model)
            blocking = [-(v if val else -v) for v, val in model.items()]
            incremental.add_clause(blocking)
            accumulated.append(blocking)


@pytest.mark.parametrize("seed", range(6))
def test_sat_assumptions_agree_and_do_not_poison(seed):
    """``solve(assumptions=...)`` answers like a scratch solver with the
    assumptions added as unit clauses, and an unsat-under-assumptions
    answer leaves the solver reusable (assumption levels retract)."""
    import random

    rng = random.Random(seed)
    for _ in range(25):
        num_vars = rng.randint(2, 8)
        clauses = [
            [rng.choice([-1, 1]) * rng.randint(1, num_vars) for _ in range(rng.randint(1, 4))]
            for _ in range(rng.randint(1, 20))
        ]
        assumptions = [
            rng.choice([-1, 1]) * v
            for v in rng.sample(range(1, num_vars + 1), rng.randint(1, num_vars))
        ]
        solver = SatSolver(num_vars, incremental=True)
        solver.add_clauses(clauses)
        plain = solver.solve().satisfiable
        under = solver.solve(assumptions=assumptions).satisfiable
        expected = _brute_force_satisfiable(
            num_vars, clauses + [[lit] for lit in assumptions]
        )
        assert under == expected, (seed, clauses, assumptions)
        # The assumption levels must fully retract: the plain problem's
        # verdict is unchanged afterwards.
        assert solver.solve().satisfiable == plain, (seed, clauses, assumptions)


def test_sat_learned_clauses_and_trail_survive_between_solves():
    """The incremental engine keeps its clause database (learned clauses
    included) and its level-0 trail across ``solve()`` calls instead of
    rebuilding from scratch."""
    pigeons, holes = 4, 3
    var = lambda p, h: p * holes + h + 1  # noqa: E731
    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    # Drop one at-most-one clause so the instance is (barely) satisfiable:
    # the solver must conflict and learn on the way to a model.
    satisfiable_clauses = clauses[:-1]
    solver = SatSolver(pigeons * holes, incremental=True)
    solver.add_clauses(satisfiable_clauses)
    assert solver.solve().satisfiable
    learned_after_first = len(solver._learned)
    db_after_first = len(solver._db)
    assert solver.solve().satisfiable
    # Nothing was thrown away between the calls.
    assert len(solver._learned) >= learned_after_first
    assert len(solver._db) >= db_after_first
    # Adding back the dropped clause plus a contradiction flips to UNSAT
    # on the same solver object.
    solver.add_clause(clauses[-1])
    final = solver.solve()
    assert final.satisfiable == _brute_force_satisfiable(pigeons * holes, clauses)


def test_sat_refutes_pigeonhole():
    """PHP(4,3) — 4 pigeons in 3 holes — is UNSAT and needs real search
    (clause learning), not just unit propagation."""
    pigeons, holes = 4, 3
    var = lambda p, h: p * holes + h + 1  # noqa: E731
    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    solver = SatSolver(pigeons * holes)
    solver.add_clauses(clauses)
    assert not solver.solve().satisfiable
