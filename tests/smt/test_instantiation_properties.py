"""Property tests for the E-matching instantiation engine.

Three properties pin the engine (plus the ``"ground"`` mode it subsumes):

* *instantiation soundness*: every instance the E-matcher emits is a
  substitution instance of its source quantifier — recomputing
  ``substitute(source.body, substitution)`` reproduces the recorded
  instance exactly, the substitution's domain is the quantifier's
  parameters, and every bound value is a ground term;
* *per-instance skolemization*: existential witnesses are never shared
  across different instances of one quantifier (the shared-constant
  skolemization of the previous engine was a genuine unsoundness, pinned
  here by a regression sequent it used to prove);
* *corpus agreement*: on a valid/invalid sequent corpus,
  ``instantiation="ematch"`` agrees with ``"ground"`` and with the fair
  resolution baseline wherever either decides — the engines may differ in
  power, never in direction.
"""

import random

import pytest

from repro.fol.prover import FirstOrderProver
from repro.form import ast as F
from repro.form.parser import parse_formula as parse
from repro.form.printer import to_str
from repro.form.subst import free_vars, substitute
from repro.smt.instantiate import (
    EMatchEngine,
    InstantiationConfig,
    Trigger,
    ground_problem,
    infer_triggers,
)
from repro.smt.prover import SmtProver
from repro.vcgen.sequent import sequent

# ---------------------------------------------------------------------------
# Random quantified problems (seeded: every run sees the same corpus)
# ---------------------------------------------------------------------------

_CONSTANTS = ["a", "b", "c", "d"]
_UNARY = ["p", "q"]
_BINARY = ["r", "s"]
_FUNCTIONS = ["f", "g"]


def _random_ground_term(rng, depth=0):
    if depth >= 2 or rng.random() < 0.6:
        return F.Var(rng.choice(_CONSTANTS))
    return F.app(rng.choice(_FUNCTIONS), _random_ground_term(rng, depth + 1))


def _random_atom(rng, variables):
    def term():
        if variables and rng.random() < 0.5:
            return F.Var(rng.choice(variables))
        if rng.random() < 0.3:
            base = F.Var(rng.choice(variables)) if variables and rng.random() < 0.5 else _random_ground_term(rng, 1)
            return F.app(rng.choice(_FUNCTIONS), base)
        return _random_ground_term(rng)

    if rng.random() < 0.5:
        return F.app(rng.choice(_UNARY), term())
    return F.app(rng.choice(_BINARY), term(), term())


def _random_quantifier(rng) -> F.Quant:
    arity = rng.randint(1, 2)
    variables = ["x", "y"][:arity]
    n_hyp = rng.randint(1, 2)
    hypotheses = [_random_atom(rng, variables) for _ in range(n_hyp)]
    conclusion = _random_atom(rng, variables)
    body = F.mk_implies(F.mk_and(tuple(hypotheses)), conclusion)
    if rng.random() < 0.3:
        # An existential conclusion: exercises per-instance skolemization.
        body = F.mk_implies(
            F.mk_and(tuple(hypotheses)),
            F.mk_exists((("w", None),), F.app(rng.choice(_BINARY), F.Var(variables[0]), F.Var("w"))),
        )
    return F.Quant("ALL", tuple((v, None) for v in variables), body)


def _random_ground_facts(rng):
    facts = []
    for _ in range(rng.randint(2, 6)):
        facts.append(_random_atom(rng, []))
    if rng.random() < 0.5:
        facts.append(F.Eq(_random_ground_term(rng), _random_ground_term(rng)))
    return facts


@pytest.mark.parametrize("seed", range(40))
def test_every_emitted_instance_is_a_substitution_instance(seed):
    rng = random.Random(seed)
    quantifiers = [_random_quantifier(rng) for _ in range(rng.randint(1, 4))]
    facts = _random_ground_facts(rng)
    engine = EMatchEngine(list(quantifiers) + facts, InstantiationConfig())
    engine.round()
    engine.round([(e.lhs, e.rhs) for e in facts if isinstance(e, F.Eq)])
    assert engine.records, f"seed {seed}: engine emitted nothing (corpus too thin)"
    for record in engine.records:
        params = {name for name, _ in record.source.params}
        assert set(record.substitution) == params, (
            f"seed {seed}: substitution domain {set(record.substitution)} != {params}"
        )
        for value in record.substitution.values():
            assert not free_vars(value) & params, (
                f"seed {seed}: non-ground substitution value {to_str(value)}"
            )
        recomputed = substitute(record.source.body, record.substitution)
        assert recomputed == record.instance, (
            f"seed {seed}: recorded instance is not the substitution instance\n"
            f"  source: {to_str(record.source)}\n"
            f"  subst: {{{', '.join(f'{k}: {to_str(v)}' for k, v in record.substitution.items())}}}\n"
            f"  recorded: {to_str(record.instance)}\n"
            f"  recomputed: {to_str(recomputed)}"
        )


@pytest.mark.parametrize("seed", range(20))
def test_ground_mode_instances_never_prove_what_fair_resolution_refutes(seed):
    """Randomized cross-engine agreement: whenever the SMT prover (either
    mode) proves assumptions |- goal from a random corpus, the fair
    resolution baseline proves it too."""
    rng = random.Random(1000 + seed)
    quantifiers = [_random_quantifier(rng) for _ in range(rng.randint(1, 3))]
    facts = _random_ground_facts(rng)
    goal = _random_atom(rng, [])
    seq = sequent(list(quantifiers) + facts, goal)
    fair = FirstOrderProver(
        timeout=10.0, strategy="fair", ordering="none", selection="none",
        max_processed=20000, max_generated=400000,
    )
    for mode in ("ematch", "ground"):
        answer = SmtProver(timeout=4.0, instantiation=mode).prove(seq)
        if answer.proved:
            assert fair.prove(seq).proved, (
                f"seed {seed}: smt[{mode}] proved a sequent fair resolution "
                f"cannot: {to_str(seq.to_implication())}"
            )


# ---------------------------------------------------------------------------
# The skolemization regression (shared witness under a universal)
# ---------------------------------------------------------------------------


def test_shared_skolem_regression_is_not_provable():
    """``ALL x. EX y. f y = x, a ~= b |- p (f a)`` is invalid; the previous
    engine skolemized the existential with one constant shared by every
    instance and *proved* it.  Neither mode may."""
    seq = sequent([parse("ALL x. EX y. f y = x"), parse("a ~= b")], parse("p (f a)"))
    for mode in ("ematch", "ground"):
        answer = SmtProver(timeout=5.0, instantiation=mode).prove(seq)
        assert not answer.proved, f"mode {mode} proved an invalid sequent"


def test_distinct_instances_get_distinct_witnesses():
    """Two instances of one existential-conclusion quantifier must not share
    a witness constant; identical instances must share (economy)."""
    quantifier = parse("ALL x. p x --> (EX y. r x y)")
    engine = EMatchEngine(
        [quantifier, parse("p a"), parse("p b")], InstantiationConfig()
    )
    engine.round()
    witnesses = {}
    for formula in engine.ground:
        text = to_str(formula)
        for constant in ("a", "b"):
            if f"r {constant} sk_" in text:
                witnesses[constant] = text.split(f"r {constant} ")[1].split()[0].rstrip(")")
    assert set(witnesses) == {"a", "b"}, f"expected instances for a and b: {witnesses}"
    assert witnesses["a"] != witnesses["b"]


# ---------------------------------------------------------------------------
# Corpus agreement: ematch vs ground vs fair resolution
# ---------------------------------------------------------------------------

_VALID = [
    (["p", "p --> q"], "q"),
    (["ALL x. p x --> q x", "p a"], "q a"),
    (["ALL x. x : S --> x ~= null", "a : S"], "a ~= null"),
    (["ALL x. x : S --> x..f : S", "a : S"], "a..f..f : S"),
    (["ALL x. p x"], "p a & p b"),
    (["ALL x y. r x y --> r y x", "r a b"], "r b a"),
    (["ALL x y z. r x y & r y z --> r x z", "r a b", "r b c"], "r a c"),
    (["EX x. p x", "ALL x. p x --> q x"], "EX x. q x"),
    (["a = b", "ALL x. p x --> q x", "p a"], "q b"),
]

_INVALID = [
    (["p --> q", "q"], "p"),
    (["ALL x. p x --> q x"], "q a"),
    (["ALL x. x : S --> x ~= null"], "a ~= null"),
    (["EX x. p x"], "p a"),
    (["ALL x. EX y. r x y", "a ~= b"], "r a a"),
    (["ALL x. p x | q x"], "p a"),
]


def _smt_verdict(assumptions, goal, mode):
    seq = sequent([parse(a) for a in assumptions], parse(goal))
    return SmtProver(timeout=5.0, instantiation=mode).prove(seq).proved


def _fair_verdict(assumptions, goal):
    seq = sequent([parse(a) for a in assumptions], parse(goal))
    return FirstOrderProver(
        timeout=5.0, strategy="fair", ordering="none", selection="none"
    ).prove(seq).proved


@pytest.mark.parametrize("assumptions, goal", _VALID)
def test_modes_agree_with_each_other_and_fair_on_valid_sequents(assumptions, goal):
    assert _smt_verdict(assumptions, goal, "ematch")
    assert _smt_verdict(assumptions, goal, "ground")
    assert _fair_verdict(assumptions, goal)


@pytest.mark.parametrize("assumptions, goal", _INVALID)
def test_no_engine_proves_invalid_sequents(assumptions, goal):
    assert not _smt_verdict(assumptions, goal, "ematch")
    assert not _smt_verdict(assumptions, goal, "ground")
    assert not _fair_verdict(assumptions, goal)


def test_nested_universal_instances_are_pooled_and_matched():
    """``ALL x. p x --> (ALL y. r x y)`` instantiated at ``x`` yields a
    universal in ``y``: the instance must be hoisted back into the
    quantifier pool and matched in a later round, not weakened away."""
    seq = sequent(
        [parse("ALL x. p x --> (ALL y. r x y)"), parse("p a")], parse("r a b")
    )
    assert SmtProver(timeout=5.0, instantiation="ematch").prove(seq).proved
    invalid = sequent([parse("ALL x. p x --> (ALL y. r x y)")], parse("r a b"))
    assert not SmtProver(timeout=3.0, instantiation="ematch").prove(invalid).proved


# ---------------------------------------------------------------------------
# Trigger inference
# ---------------------------------------------------------------------------


def test_mono_pattern_prefers_minimal_covering_subterm():
    quantifier = parse("ALL x. p (f x) --> q (f x)")
    triggers = infer_triggers(quantifier, InstantiationConfig())
    assert triggers, "expected at least one trigger"
    # f x covers x and is a subterm of p (f x)/q (f x): it must be the
    # (only kind of) kept pattern head.
    heads = {to_str(t.patterns[0]) for t in triggers}
    assert "f x" in heads


def test_multi_pattern_covers_all_variables_with_hypotheses_first():
    quantifier = parse("ALL x y z. r x y & r y z --> r x z")
    triggers = infer_triggers(quantifier, InstantiationConfig())
    assert len(triggers) == 1
    patterns = [to_str(p) for p in triggers[0].patterns]
    # The hypothesis pair {r x y, r y z}, not the conclusion r x z.
    assert patterns == ["r x y", "r y z"]


def test_reflexivity_has_a_degenerate_trigger_and_uses_fallback():
    quantifier = parse("ALL x. r x x")
    engine = EMatchEngine([quantifier, parse("p a"), parse("p b")], InstantiationConfig())
    engine.round()
    texts = [to_str(g) for g in engine.ground]
    assert any("r a a" in t for t in texts)
    assert any(r.via == "fallback" for r in engine.records)


def test_arithmetic_heads_are_not_triggers():
    quantifier = parse("ALL x. x + 1 > x")
    triggers = infer_triggers(quantifier, InstantiationConfig())
    assert triggers == ()


# ---------------------------------------------------------------------------
# Grounding-cap accounting (the silent-truncation fix)
# ---------------------------------------------------------------------------


def test_ground_problem_reports_dropped_instances():
    assertions = [parse("ALL x y. r x y --> r y x"), parse("r a b"), parse("r c d")]
    tight = InstantiationConfig(mode="ground", max_instances_per_formula=2)
    result = ground_problem(assertions, config=tight)
    assert result.truncated
    assert result.dropped > 0


def test_truncated_grounding_yields_unknown_with_loud_detail():
    """With the total-formula cap at 1 the needed instance is dropped: the
    prover must answer UNKNOWN (never a wrong verdict) and say why."""
    tight = InstantiationConfig(mode="ground", max_total_formulas=1, rounds=1)
    seq = sequent(
        [parse("ALL x. p x --> q x"), parse("ALL x. q x --> s x"), parse("p a")],
        parse("s a"),
    )
    answer = SmtProver(timeout=5.0, instantiation=tight).prove(seq)
    assert not answer.proved
    assert "dropped" in answer.detail, answer.detail
    # The same sequent proves under default limits (the cap, not the
    # engine, is what lost it).
    assert SmtProver(timeout=5.0, instantiation="ground").prove(seq).proved
