"""Theory solvers of the SMT prover: congruence closure and linear arithmetic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fol.terms import FApp, FVar, const
from repro.form.parser import parse_formula as parse
from repro.smt.congruence import CongruenceClosure, check_euf
from repro.smt.lia import check_lia, fourier_motzkin_consistent, Constraint
from fractions import Fraction


a, b, c, d = const("a"), const("b"), const("c"), const("d")


def f(*args):
    return FApp("f", args)


# -- congruence closure -------------------------------------------------------------


def test_euf_transitivity():
    assert not check_euf([(a, b), (b, c)], [(a, c)])


def test_euf_congruence():
    assert not check_euf([(a, b)], [(f(a), f(b))])


def test_euf_nested_congruence():
    assert not check_euf([(a, b)], [(f(f(a)), f(f(b)))])


def test_euf_consistent_assignment():
    assert check_euf([(a, b)], [(c, d)])


def test_euf_predicates_via_reification():
    # p(a) true and p(b) false with a = b is inconsistent.
    assert not check_euf([(a, b)], [], true_atoms=[FApp("p", (a,))], false_atoms=[FApp("p", (b,))])


def test_euf_predicates_consistent():
    assert check_euf([], [], true_atoms=[FApp("p", (a,))], false_atoms=[FApp("p", (b,))])


def test_equivalence_classes():
    cc = CongruenceClosure()
    cc.assert_equal(a, b)
    cc.assert_equal(c, d)
    assert cc.check()
    classes = cc.equivalence_classes()
    assert any({a, b} <= cls for cls in classes)
    assert not any({a, c} <= cls for cls in classes)


@given(st.integers(min_value=2, max_value=12))
@settings(max_examples=20, deadline=None)
def test_euf_chain_property(n):
    """A chain a0=a1=...=an always contradicts a0 != an (any length)."""
    constants = [const(f"k{i}") for i in range(n + 1)]
    equalities = [(constants[i], constants[i + 1]) for i in range(n)]
    assert not check_euf(equalities, [(constants[0], constants[-1])])
    assert check_euf(equalities[:-1], [(constants[0], constants[-1])])


# -- linear integer arithmetic -----------------------------------------------------------


def _lits(*pairs):
    return [(parse(text), positive) for text, positive in pairs]


def test_lia_transitivity_conflict():
    assert not check_lia(_lits(("x < y", True), ("y < z", True), ("z < x", True)))


def test_lia_equality_and_strict():
    assert not check_lia(_lits(("x = y", True), ("x < y", True)))


def test_lia_consistent():
    assert check_lia(_lits(("x < y", True), ("y < z", True)))


def test_lia_negated_inequality():
    # ~(x <= y) and ~(y <= x) cannot both hold.
    assert not check_lia(_lits(("x <= y", False), ("y <= x", False)))


def test_lia_integer_tightening():
    # x < y < x + 1 has no integer solution.
    assert not check_lia(_lits(("x < y", True), ("y < x + 1", True)))


def test_lia_cardinality_nonnegative():
    assert not check_lia(_lits(("card S < 0", True)))


def test_lia_constants():
    assert not check_lia(_lits(("x = 3", True), ("x = 4", True)))
    assert check_lia(_lits(("x = 3", True), ("y = 4", True)))


def test_lia_coefficients():
    assert not check_lia(_lits(("2 * x < 4", True), ("3 <= x", True)))


def test_fourier_motzkin_direct():
    constraints = [
        Constraint({"x": Fraction(1)}, Fraction(5)),       # x <= 5
        Constraint({"x": Fraction(-1)}, Fraction(-7)),      # x >= 7
    ]
    assert not fourier_motzkin_consistent(constraints)


def test_fourier_motzkin_feasible():
    constraints = [
        Constraint({"x": Fraction(1), "y": Fraction(-1)}, Fraction(0)),   # x <= y
        Constraint({"y": Fraction(1)}, Fraction(10)),
    ]
    assert fourier_motzkin_consistent(constraints)


@given(st.integers(min_value=-20, max_value=20), st.integers(min_value=-20, max_value=20))
@settings(max_examples=40, deadline=None)
def test_lia_interval_property(low, high):
    """low <= x <= high is consistent exactly when low <= high."""
    literals = _lits((f"{low} <= x", True), (f"x <= {high}", True))
    assert check_lia(literals) == (low <= high)
