"""The interactive proof kernel, scripts and the lemma store."""

import pytest

from repro.form.parser import parse_formula as parse
from repro.interactive.kernel import Kernel, ProofError, ProofScript, ProofState
from repro.interactive.lemma_store import LemmaStore
from repro.interactive.prover import InteractiveProver
from repro.vcgen.sequent import sequent


def _seq(assumptions, goal):
    return sequent([parse(a) for a in assumptions], parse(goal))


def test_intro_implication():
    kernel = Kernel(automatic_provers=[])
    state = ProofState([_seq([], "p --> p")])
    state = kernel.apply(state, "intro")
    assert not state.finished
    goal = state.first()
    assert str(goal.goal.formula) != ""
    assert any(str(a.formula) for a in goal.assumptions)


def test_intro_universal():
    kernel = Kernel(automatic_provers=[])
    state = ProofState([_seq([], "ALL x. x = x")])
    state = kernel.apply(state, "intro")
    from repro.form import ast as F

    assert isinstance(state.first().goal.formula, F.Eq)


def test_split_conjunction():
    kernel = Kernel(automatic_provers=[])
    state = ProofState([_seq(["p", "q"], "p & q")])
    state = kernel.apply(state, "split")
    assert len(state.goals) == 2


def test_assumption_tactic():
    kernel = Kernel(automatic_provers=[])
    state = ProofState([_seq(["p"], "p")])
    state = kernel.apply(state, "assumption")
    assert state.finished


def test_assumption_tactic_fails_when_not_assumed():
    kernel = Kernel(automatic_provers=[])
    state = ProofState([_seq([], "p")])
    with pytest.raises(ProofError):
        kernel.apply(state, "assumption")


def test_cases_tactic_splits_into_two_goals():
    kernel = Kernel(automatic_provers=[])
    state = ProofState([_seq([], "p | ~p")])
    state = kernel.apply(state, "cases", "p")
    assert len(state.goals) == 2


def test_have_introduces_a_lemma_subgoal():
    kernel = Kernel(automatic_provers=[])
    state = ProofState([_seq(["a = b", "b = c"], "a = c")])
    state = kernel.apply(state, "have", "a = c")
    assert len(state.goals) == 2


def test_instantiate_tactic():
    kernel = Kernel(automatic_provers=[])
    seq = sequent([parse("ALL x. x : S --> x ~= null")], parse("a : S --> a ~= null"))
    seq.assumptions[0].labels  # labels are empty; add via Labeled path below
    from repro.vcgen.sequent import Labeled, Sequent

    labelled = Sequent(
        assumptions=(Labeled(parse("ALL x. x : S --> x ~= null"), ("inv",)),),
        goal=Labeled(parse("a : S --> a ~= null")),
    )
    state = ProofState([labelled])
    state = kernel.apply(state, "instantiate", "inv: a")
    texts = [str(a) for a in state.first().assumptions]
    assert any("a : S" in text for text in texts)


def test_script_replay_success():
    kernel = Kernel()
    script = ProofScript("simple", [("intro", ""), ("auto", "")])
    assert kernel.replay(_seq([], "x = y --> x = y"), script)


def test_script_replay_failure_is_not_an_error():
    kernel = Kernel(automatic_provers=[])
    script = ProofScript("broken", [("split", "")])
    assert not kernel.replay(_seq([], "p --> q"), script)


def test_unknown_tactic_rejected():
    kernel = Kernel(automatic_provers=[])
    with pytest.raises(ProofError):
        kernel.apply(ProofState([_seq([], "p")]), "hammer")


# -- lemma store and interactive prover ----------------------------------------------------


def test_lemma_store_roundtrip(tmp_path):
    store = LemmaStore()
    seq = _seq(["a = b", "b = c"], "a = c")
    store.add_for(seq, ProofScript("trans", [("auto", "smt")]))
    path = tmp_path / "lemmas.json"
    store.save(path)
    loaded = LemmaStore.load(path)
    assert loaded.lookup(seq) is not None
    assert loaded.lookup(seq).name == "trans"


def test_interactive_prover_uses_stored_script():
    seq = _seq(["a = b", "b = c"], "a = c")
    store = LemmaStore()
    store.add_for(seq, ProofScript("trans", [("auto", "smt")]))
    prover = InteractiveProver(store=store, use_default_script=False)
    assert prover.prove(seq).proved


def test_interactive_prover_default_script():
    prover = InteractiveProver()
    assert prover.prove(_seq([], "ALL x. x : S --> x : S")).proved


def test_interactive_prover_cannot_prove_invalid():
    prover = InteractiveProver()
    assert not prover.prove(_seq([], "x = y")).proved
