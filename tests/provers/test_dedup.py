"""The cross-method dedup pre-pass: duplicate sequents (by structural
digest) are proved once and their verdicts fanned back out, with the same
per-sequent outcomes, correct ProverStats attribution (representative proved
live, duplicates replayed) and byte-identical reports vs. no-dedup runs."""

import pytest

from repro.form.parser import parse_formula as parse
from repro.provers.cache import SequentCache
from repro.provers.dispatcher import (
    Dispatcher,
    ParallelDispatcher,
    make_provers,
)
from repro.vcgen.sequent import sequent


def _batch_with_duplicates():
    """Five sequents, three distinct digests: indices 0/2 are alpha-variants
    (splitter numbering only) and 1/4 are verbatim duplicates."""
    return [
        sequent([parse("x$1 : A")], parse("x$1 : A")),        # proved (syntactic)
        sequent([parse("a < b"), parse("b < c")], parse("a < c")),  # proved (smt)
        sequent([parse("x$9 : A")], parse("x$9 : A")),        # duplicate of 0
        sequent([], parse("q")),                              # stays unproved
        sequent([parse("a < b"), parse("b < c")], parse("a < c")),  # duplicate of 1
    ]


def _shape(result):
    return [(o.proved, o.prover) for o in result.outcomes]


def _verdicts(result):
    return [[(a.prover, a.verdict) for a in o.answers] for o in result.outcomes]


def _stat_counts(result):
    return {name: (s.attempted, s.proved) for name, s in result.stats.items()}


PROVERS = ["syntactic", "smt"]


def test_dedup_outcomes_identical_to_no_dedup():
    seqs = _batch_with_duplicates()
    plain = Dispatcher(make_provers(PROVERS)).prove_all(seqs)
    deduped = Dispatcher(make_provers(PROVERS), dedup=True).prove_all(seqs)
    assert _shape(deduped) == _shape(plain)
    assert _verdicts(deduped) == _verdicts(plain)


def test_dedup_attributes_duplicates_as_replayed():
    seqs = _batch_with_duplicates()
    result = Dispatcher(make_provers(PROVERS), dedup=True).prove_all(seqs)
    assert result.dedup_replayed == 2
    # Representatives were proved live; duplicates replayed (cached answers).
    assert result.proved == 4  # indices 0, 1 live + their duplicates 2, 4
    assert result.proved_live == 2  # indices 0 and 1
    assert result.proved_from_cache == 2  # the fanned-out duplicates 2 and 4
    # Index 2 duplicates a syntactic proof, index 4 an smt proof; both carry
    # only cached answers.
    for index in (2, 4):
        assert all(a.cached for a in result.outcomes[index].answers)
        assert result.outcomes[index].from_cache or not result.outcomes[index].proved


def test_dedup_prover_stats_count_only_representatives():
    seqs = _batch_with_duplicates()
    plain = Dispatcher(make_provers(PROVERS)).prove_all(seqs)
    deduped = Dispatcher(make_provers(PROVERS), dedup=True).prove_all(seqs)
    plain_counts = _stat_counts(plain)
    dedup_counts = _stat_counts(deduped)
    # The no-dedup run attempts the duplicates too; the dedup run does not.
    assert dedup_counts["syntactic"] == (3, 1)  # representatives 0, 1, 3 only
    assert dedup_counts["smt"] == (2, 1)        # representatives 1 and 3
    assert plain_counts["syntactic"][0] > dedup_counts["syntactic"][0]
    # Without dedup every duplicate is re-proved live; with dedup the proof
    # count per prover drops by exactly the replayed duplicates.
    assert plain_counts["syntactic"][1] == dedup_counts["syntactic"][1] + 1
    assert plain_counts["smt"][1] == dedup_counts["smt"][1] + 1
    # Total proved sequents (live + replayed) still agree.
    assert plain.proved == deduped.proved


def test_dedup_matches_warm_cache_accounting():
    """Dedup replay is accounted exactly like a warm-cache replay, so a
    dedup run and a cached no-dedup run of the same batch agree on every
    counter a report prints."""
    seqs = _batch_with_duplicates()
    cached = Dispatcher(make_provers(PROVERS), cache=SequentCache()).prove_all(seqs)
    deduped = Dispatcher(
        make_provers(PROVERS), cache=SequentCache(), dedup=True
    ).prove_all(seqs)
    assert _shape(deduped) == _shape(cached)
    assert _stat_counts(deduped) == _stat_counts(cached)
    assert deduped.cache_stats.hits == cached.cache_stats.hits
    assert deduped.proved_from_cache == cached.proved_from_cache
    assert deduped.proved_live == cached.proved_live


@pytest.mark.parametrize("backend", ["thread", "process"])
@pytest.mark.parametrize("workers", [1, 3])
def test_parallel_dedup_matches_sequential_dedup(backend, workers):
    seqs = _batch_with_duplicates()
    sequential = Dispatcher(make_provers(PROVERS), dedup=True).prove_all(seqs)
    parallel = ParallelDispatcher.from_names(
        PROVERS, workers=workers, backend=backend, dedup=True
    ).prove_all(seqs)
    assert _shape(parallel) == _shape(sequential)
    assert _verdicts(parallel) == _verdicts(sequential)
    assert _stat_counts(parallel) == _stat_counts(sequential)
    assert parallel.dedup_replayed == sequential.dedup_replayed == 2


def test_parallel_dedup_with_cache_stores_only_representatives():
    cache = SequentCache()
    seqs = _batch_with_duplicates()
    ParallelDispatcher.from_names(
        PROVERS, workers=2, cache=cache, dedup=True
    ).prove_all(seqs)
    # 3 distinct digests; the two proved chains store per-prover entries and
    # replaying the whole batch afterwards needs no live prover at all.
    replay = ParallelDispatcher.from_names(
        PROVERS, workers=2, cache=cache, dedup=True
    ).prove_all(seqs)
    assert replay.proved_live == 0
    assert not replay.stats


def test_dedup_with_no_duplicates_is_identity():
    seqs = [
        sequent([parse("p")], parse("p")),
        sequent([], parse("q")),
    ]
    plain = Dispatcher(make_provers(PROVERS)).prove_all(seqs)
    deduped = Dispatcher(make_provers(PROVERS), dedup=True).prove_all(seqs)
    assert _shape(deduped) == _shape(plain)
    assert _stat_counts(deduped) == _stat_counts(plain)
    assert deduped.dedup_replayed == 0


def test_dedup_report_byte_identical_to_no_dedup_run():
    """End to end: verifying a method with dedup produces the same formatted
    report, byte for byte, as the plain cached run."""
    from repro import suite, verify

    source = suite.source("SizedList")
    kwargs = dict(
        class_name="SizedList", method="size", provers=["smt"],
        prover_options={"smt": {"timeout": 2.0}},
    )
    plain = verify(source, cache=SequentCache(), **kwargs)
    deduped = verify(source, cache=SequentCache(), dedup=True, **kwargs)
    assert deduped.format() == plain.format()
    assert deduped.succeeded == plain.succeeded


def test_class_report_aggregates_dedup_counter():
    from repro import suite, verify_class

    report = verify_class(
        suite.source("SizedList"), class_name="SizedList", provers=["smt"],
        prover_options={"smt": {"timeout": 1.0}}, dedup=True,
    )
    assert report.dedup_replayed == sum(m.dedup_replayed for m in report.methods)
    assert report.proved_live <= report.proved_sequents
