"""Syntactic prover, approximation, relevance selection and the dispatcher."""

import pytest

from repro.form import ast as F
from repro.form.parser import parse_formula as parse
from repro.provers.approximation import (
    approximate,
    drop_unsupported_assumptions,
    is_first_order_atom,
    is_ground_smt_atom,
    relevant_assumptions,
    rewrite_sequent,
)
from repro.provers.base import ProverStats, Verdict
from repro.provers.dispatcher import (
    DEFAULT_ORDER,
    Dispatcher,
    PROVER_ALIASES,
    make_provers,
    resolve_prover_names,
)
from repro.provers.syntactic import SyntacticProver
from repro.vcgen.sequent import Labeled, Sequent, sequent


def _syntactic(assumptions, goal):
    return SyntacticProver().prove(sequent([parse(a) for a in assumptions], parse(goal)))


# -- syntactic prover ----------------------------------------------------------------


@pytest.mark.parametrize(
    "assumptions, goal",
    [
        ([], "True"),
        ([], "x = x"),
        (["p"], "p"),
        (["x ~= null"], "x ~= null"),
        (["p & q"], "q"),
        (["a = b"], "b = a"),
        (["False"], "anything = everything"),
        (["p", "~p"], "q"),
        (["ALL x. x : S --> x ~= null"], "ALL x. x : S --> x ~= null"),
        (["x : A Un {}"], "x : A"),  # via simplification
    ],
)
def test_syntactic_proves_trivial_sequents(assumptions, goal):
    assert _syntactic(assumptions, goal).proved


@pytest.mark.parametrize(
    "assumptions, goal",
    [
        ([], "p"),
        (["p"], "q"),
        (["p | q"], "p"),
        (["a = b", "b = c"], "a = c"),  # needs real equality reasoning
    ],
)
def test_syntactic_does_not_overreach(assumptions, goal):
    assert not _syntactic(assumptions, goal).proved


# -- guarded modus ponens (quantified-assumption instances) --------------------------


@pytest.mark.parametrize(
    "assumptions, goal",
    [
        # Plain instance of a guarded universal with both antecedents assumed.
        (
            ["ALL m. m ~= null & m : S --> m..key : content", "a ~= null", "a : S"],
            "a..key : content",
        ),
        # Conjunction consequent: the goal matches one conjunct.
        (
            ["ALL m. m : S --> m : alloc & m..key : content", "a : S"],
            "a..key : content",
        ),
        # Unguarded universal instance.
        (["ALL x. x..f : T", "unrelated"], "c..f : T"),
        # Instantiation at a complex term.
        (
            ["ALL m. m ~= null & (root, m) : {(u, v). u..next = v}^* --> m : alloc",
             "b..next ~= null",
             "(root, b..next) : {(u, v). u..next = v}^*"],
            "b..next : alloc",
        ),
    ],
)
def test_syntactic_modus_ponens_on_quantified_assumptions(assumptions, goal):
    assert _syntactic(assumptions, goal).proved


@pytest.mark.parametrize(
    "assumptions, goal",
    [
        # Antecedent not assumed: must not conclude the instance.
        (["ALL m. m ~= null & m : S --> m..key : content", "a : S"], "a..key : content"),
        # Wrong instance shape.
        (["ALL m. m : S --> m..key : content", "a : S"], "b..key : content"),
        # Existential assumption gives no instances.
        (["EX m. m : S & m..key : content", "a : S"], "a..key : content"),
        # Variable capture: binding the hole y to the target's bound x would
        # turn `ALL y. EX x. P x y` into the invalid `EX x. P x x`.
        (["ALL y. EX x. P x y"], "EX x. P x x"),
        # Same capture shape through a nested universal.
        (["ALL y. ALL x. R x --> Q x y"], "ALL x. R x --> Q x x"),
    ],
)
def test_syntactic_modus_ponens_stays_sound(assumptions, goal):
    assert not _syntactic(assumptions, goal).proved


# -- approximation (Figure 14) ----------------------------------------------------------


def test_approximation_replaces_unsupported_positive_atom_with_false():
    formula = parse("card A = 3")
    result = approximate(formula, lambda atom: False, positive=True)
    assert result == F.FALSE


def test_approximation_replaces_unsupported_negative_atom_with_true():
    formula = parse("card A = 3")
    result = approximate(formula, lambda atom: False, positive=False)
    assert result == F.TRUE


def test_approximation_keeps_supported_atoms():
    formula = parse("x : A & card A = 3")
    result = approximate(formula, lambda atom: not F.is_app_of(atom, "card") and "card" not in repr(atom), positive=False)
    # The membership atom stays, the cardinality atom is weakened away.
    assert "elem" in repr(result) or ":" in repr(result)


def test_approximation_is_polarity_aware_under_negation():
    formula = F.Not(parse("card A = 3"))
    positive = approximate(formula, lambda atom: False, positive=True)
    assert positive == F.FALSE  # ~True


def test_drop_unsupported_assumptions_removes_trivial_ones():
    seq = sequent([parse("card A = 3"), parse("x : A")], parse("x : A"))
    reduced = drop_unsupported_assumptions(seq, is_ground_smt_atom)
    kept = [a.formula for a in reduced.assumptions]
    assert parse("x : A") in kept
    assert all("card" not in repr(f) for f in kept)


def test_atom_filters():
    assert is_first_order_atom(parse("x : A"))
    assert not is_first_order_atom(parse("card A = 3"))
    assert not is_ground_smt_atom(parse("(x, y) : R^*"))
    assert is_ground_smt_atom(parse("x < y"))


# -- relevance-based assumption selection (Section 4.4) -----------------------------------


def test_relevant_assumptions_keeps_connected_chain():
    seq = sequent(
        [parse("a = b"), parse("b = c"), parse("unrelated : Other")],
        parse("a = c"),
    )
    reduced = relevant_assumptions(seq)
    kept = [a.formula for a in reduced.assumptions]
    assert parse("a = b") in kept and parse("b = c") in kept
    assert parse("unrelated : Other") not in kept


def test_relevant_assumptions_never_drops_everything_needed():
    seq = sequent([parse("x : S")], parse("x : S"))
    reduced = relevant_assumptions(seq)
    assert len(reduced.assumptions) == 1


def test_rewrite_sequent_expands_memberships():
    seq = sequent([parse("x : A Un B")], parse("x : B Un A"))
    rewritten = rewrite_sequent(seq)
    assert isinstance(rewritten.assumptions[0].formula, F.Or)


# -- hints ("by" clauses) -------------------------------------------------------------------


def test_by_hints_select_assumptions():
    seq = Sequent(
        assumptions=(
            Labeled(parse("p"), ("lemma1",)),
            Labeled(parse("q"), ("lemma2",)),
        ),
        goal=Labeled(parse("p")),
        hints=("lemma1",),
    )
    restricted = seq.restricted()
    assert len(restricted.assumptions) == 1
    assert restricted.assumptions[0].labels == ("lemma1",)


def test_by_hints_fall_back_when_nothing_matches():
    seq = Sequent(
        assumptions=(Labeled(parse("p"), ("lemma1",)),),
        goal=Labeled(parse("p")),
        hints=("nonexistent",),
    )
    assert len(seq.restricted().assumptions) == 1


# -- dispatcher ------------------------------------------------------------------------------


def test_resolve_prover_aliases():
    assert resolve_prover_names(["spass", "e", "z3", "cvc3", "isabelle"]) == [
        "fol", "fol", "smt", "smt", "interactive",
    ]
    for alias, engine in PROVER_ALIASES.items():
        assert resolve_prover_names([alias]) == [engine]


def test_make_provers_known_names():
    provers = make_provers(["syntactic", "smt", "bapa"])
    assert [p.name for p in provers] == ["syntactic", "smt", "bapa"]


def test_make_provers_unknown_name():
    with pytest.raises(KeyError):
        make_provers(["no-such-prover"])


def test_dispatcher_first_success_wins_and_stats_recorded():
    seqs = [
        sequent([parse("p")], parse("p")),                      # syntactic
        sequent([parse("x < y"), parse("y < z")], parse("x < z")),  # smt
    ]
    dispatcher = Dispatcher(make_provers(["syntactic", "smt"]))
    result = dispatcher.prove_all(seqs)
    assert result.proved == 2
    assert result.all_proved
    assert result.proved_by("syntactic") == 1
    assert result.proved_by("smt") == 1
    assert result.stats["syntactic"].attempted == 2  # tried first on both


def test_dispatcher_records_unproved():
    dispatcher = Dispatcher(make_provers(["syntactic"]))
    result = dispatcher.prove_all([sequent([], parse("p"))])
    assert not result.all_proved
    assert len(result.unproved()) == 1


def test_prover_stats_accumulate():
    stats = ProverStats()
    from repro.provers.base import ProverAnswer

    stats.record(ProverAnswer(Verdict.PROVED, "x", time=0.5))
    stats.record(ProverAnswer(Verdict.UNKNOWN, "x", time=0.25))
    assert stats.attempted == 2
    assert stats.proved == 1
    assert stats.time == pytest.approx(0.75)


def test_default_order_contains_all_engines():
    assert set(DEFAULT_ORDER) == {"syntactic", "smt", "fol", "mona", "bapa", "interactive"}
