"""The enforced Deadline contract: no prover overruns its budget by more
than a small epsilon, even on adversarial sequents (deep automaton products,
wide Venn regions, exploding saturation), and TIMEOUT answers carry
partial-work detail.

These are the "timeout-stress" tests run by the CI smoke job; keep every
budget tight so the whole file stays fast.
"""

import time

import pytest

from repro.bapa.prover import BapaProver
from repro.fol.prover import FirstOrderProver
from repro.form.parser import parse_formula as parse
from repro.interactive.prover import InteractiveProver
from repro.mona.prover import MonaProver
from repro.provers.base import Deadline, DeadlineExpired, Verdict
from repro.provers.dispatcher import Dispatcher, make_provers
from repro.smt.prover import SmtProver
from repro.vcgen.sequent import sequent

#: Maximum tolerated overrun past the budget (the acceptance criterion).
EPSILON = 0.25


# -- the Deadline object ------------------------------------------------------------


def test_deadline_after_expires():
    deadline = Deadline.after(0.02)
    assert not deadline.expired() or deadline.remaining() == 0.0
    time.sleep(0.03)
    assert deadline.expired()
    assert deadline.remaining() == 0.0


def test_deadline_never_does_not_expire():
    deadline = Deadline.never()
    assert not deadline.expired()
    assert deadline.remaining() == float("inf")
    deadline.checkpoint()  # never raises


def test_deadline_bounded_by_takes_the_earlier_expiry():
    generous = Deadline.after(100.0)
    tight = generous.bounded_by(0.0)
    assert tight.expired()
    assert not generous.bounded_by(None).expired()
    # Bounding an already-tight deadline by a generous timeout keeps it tight.
    assert Deadline.after(0.0).bounded_by(100.0).remaining() == 0.0


def test_deadline_checkpoint_raises_with_detail():
    deadline = Deadline.after(0.0)
    with pytest.raises(DeadlineExpired) as excinfo:
        deadline.checkpoint(detail="17 widgets built")
    assert excinfo.value.detail == "17 widgets built"


def test_deadline_checkpoint_lazy_detail_callable():
    deadline = Deadline.after(0.0)
    with pytest.raises(DeadlineExpired) as excinfo:
        deadline.checkpoint(detail=lambda: "computed lazily")
    assert excinfo.value.detail == "computed lazily"


def test_deadline_checkpoint_amortises_clock_reads():
    deadline = Deadline.after(0.0)
    # With every=1000, the first 999 checkpoints skip the clock entirely.
    for _ in range(999):
        deadline.checkpoint(every=1000)
    with pytest.raises(DeadlineExpired):
        deadline.checkpoint(every=1000)


# -- adversarial sequents -----------------------------------------------------------


def _mona_adversarial():
    """Deep automaton products: a subset chain with a 5-variable quantified
    goal forces products and subset constructions over a wide alphabet
    (~6.5s unbounded on a development machine)."""
    n = 10
    assumptions = [parse(f"A{i} subseteq A{i+1}") for i in range(n)]
    names = ["x", "y", "z", "u", "v"]
    premise = " & ".join(f"{w} : A{i}" for i, w in enumerate(names))
    conclusion = " & ".join(f"{w} : A{n}" for w in names)
    goal = parse(f"ALL {' '.join(names)}. {premise} --> ({conclusion})")
    return sequent(assumptions, goal)


def _bapa_adversarial():
    """Wide Venn regions: 6 set variables (64 regions) whose cardinality
    constraints make the Fourier-Motzkin elimination explode (>30s
    unbounded)."""
    sets = ["S0", "S1", "S2", "S3", "S4", "S5"]
    assumptions = [
        parse(f"card({a} Un {b}) <= card({a} Int {b}) + k{i}")
        for i, (a, b) in enumerate(zip(sets, sets[1:]))
    ]
    assumptions += [parse(f"card {s} >= 1") for s in sets]
    goal = parse("card(S0 Un (S1 Un (S2 Un (S3 Un (S4 Un S5))))) >= 1")
    return sequent(assumptions, goal)


def _fol_adversarial():
    """A saturation-exploding entailment: transitive relations with several
    constants generate resolvents far faster than the budget allows."""
    assumptions = [
        parse("ALL x y z. r x y & r y z --> r x z"),
        parse("ALL x y. r x y --> r y x"),
        parse("ALL x y z. s x y & s y z --> s x z"),
        parse("ALL x y. r x y --> s x y"),
        parse("r a b"), parse("r b c"), parse("r c d"), parse("r d e"),
    ]
    return sequent(assumptions, parse("s e q"))  # invalid: saturates forever


def _smt_adversarial():
    """An arithmetic pigeonhole: 8 pairwise-distinct integers in [0, 6].
    Valid (the assumptions are unsatisfiable), but the DPLL(T) loop and the
    Fourier-Motzkin eliminations behind it grind far past any small budget
    (>10s unbounded)."""
    n = 8
    assumptions = []
    for i in range(n):
        assumptions += [parse(f"0 <= y{i}"), parse(f"y{i} <= {n - 2}")]
    for i in range(n):
        for j in range(i + 1, n):
            assumptions.append(parse(f"y{i} < y{j} | y{j} < y{i}"))
    return sequent(assumptions, parse(f"y{n-1} < y0"))


ADVERSARIAL = [
    (MonaProver(timeout=0.15, max_states=10**6, max_tracks=16), _mona_adversarial()),
    (BapaProver(timeout=0.15), _bapa_adversarial()),
    (FirstOrderProver(timeout=0.15, max_processed=10**6, max_generated=10**8), _fol_adversarial()),
    (SmtProver(timeout=0.15, max_theory_iterations=10**6), _smt_adversarial()),
]


@pytest.mark.parametrize(
    "prover, seq", ADVERSARIAL, ids=[p.name for p, _ in ADVERSARIAL]
)
def test_no_prover_overruns_its_own_timeout(prover, seq):
    start = time.perf_counter()
    answer = prover.prove(seq)
    elapsed = time.perf_counter() - start
    assert answer.verdict is Verdict.TIMEOUT, answer
    assert elapsed <= prover.timeout + EPSILON, (
        f"{prover.name} overran its budget: {elapsed:.3f}s > "
        f"{prover.timeout} + {EPSILON}"
    )


@pytest.mark.parametrize(
    "prover, seq", ADVERSARIAL, ids=[p.name for p, _ in ADVERSARIAL]
)
def test_timeout_answers_carry_partial_work_detail(prover, seq):
    answer = prover.prove(seq)
    assert answer.verdict is Verdict.TIMEOUT
    assert answer.detail, "TIMEOUT must describe the partial work done"
    # Every engine reports a count of the work it completed before expiry
    # (states built, regions/constraints, clauses processed, iterations).
    assert any(ch.isdigit() for ch in answer.detail), answer.detail


@pytest.mark.parametrize(
    "prover, seq", ADVERSARIAL, ids=[p.name for p, _ in ADVERSARIAL]
)
def test_external_deadline_preempts_generous_timeout(prover, seq):
    """A dispatcher deadline tighter than the prover's own timeout wins."""
    start = time.perf_counter()
    answer = prover.prove(seq, deadline=Deadline.after(0.05))
    elapsed = time.perf_counter() - start
    assert answer.verdict is Verdict.TIMEOUT
    assert elapsed <= 0.05 + EPSILON


def test_interactive_kernel_respects_deadline():
    """The kernel polls the deadline per proof-search node and the auto
    tactic's sub-provers inherit it."""
    prover = InteractiveProver(timeout=0.1)
    # The default script ends in `auto`, which runs the (deadline-bounded)
    # automated provers on the unprovable goal.
    seq = _fol_adversarial()
    start = time.perf_counter()
    answer = prover.prove(seq, deadline=Deadline.after(0.05))
    elapsed = time.perf_counter() - start
    assert elapsed <= 0.05 + EPSILON + 0.15  # + one bounded sub-prover slice
    assert not answer.proved


def test_mona_sequent_budget_cuts_off_midflight_and_portfolio_falls_through():
    """The acceptance scenario: a sequent whose MONA attempt previously ran
    unbounded now times out within budget + epsilon, and the portfolio falls
    through to the next prover in the chain."""
    # Order mona first with a tight timeout so the chain must cut it off
    # mid-flight to reach the syntactic prover within the sequent budget.
    budget = 2.0
    provers = [
        MonaProver(timeout=0.2, max_states=10**6, max_tracks=16),
        make_provers(["syntactic"])[0],
    ]
    hard = _mona_adversarial()
    # Same expensive monadic structure, but the goal occurs verbatim among
    # the assumptions, so the syntactic prover discharges it instantly.
    trivial_goal = sequent(list(hard.assumption_formulas()) + [hard.goal.formula], hard.goal.formula)
    start = time.perf_counter()
    result = Dispatcher(provers, sequent_budget=budget).prove_all([trivial_goal])
    elapsed = time.perf_counter() - start
    (outcome,) = result.outcomes
    # MONA was cut off by its enforced timeout (pre-enforcement it ran the
    # whole automaton construction to completion, ~6s)...
    assert outcome.answers[0].prover == "mona"
    assert outcome.answers[0].verdict is Verdict.TIMEOUT
    assert outcome.answers[0].time <= 0.2 + EPSILON
    # ...and the portfolio fell through to the syntactic prover.
    assert outcome.proved and outcome.prover == "syntactic"
    assert not outcome.budget_exhausted
    assert elapsed <= budget + EPSILON


def test_bapa_sequent_budget_returns_timeout_within_epsilon():
    budget = 0.2
    provers = [BapaProver(timeout=10.0)]
    start = time.perf_counter()
    result = Dispatcher(provers, sequent_budget=budget).prove_all([_bapa_adversarial()])
    elapsed = time.perf_counter() - start
    (outcome,) = result.outcomes
    assert outcome.answers[0].verdict is Verdict.TIMEOUT
    assert "interrupted" in outcome.answers[0].detail
    assert elapsed <= budget + EPSILON


def test_budget_truncated_timeouts_are_not_cached():
    """A TIMEOUT produced under a per-sequent budget may reflect the
    budget's truncated remainder, not the prover's configured timeout that
    keys the cache entry; storing it would poison later full-budget runs."""
    from repro.provers.cache import SequentCache

    cache = SequentCache()
    seq = _bapa_adversarial()
    prover = BapaProver(timeout=10.0)
    Dispatcher([prover], cache=cache, sequent_budget=0.1).prove_all([seq])
    assert cache.lookup(seq, "bapa", prover.options_signature()) is None
    # Without a sequent budget the TIMEOUT reflects the prover's own
    # (enforced) timeout and is safely cacheable.
    tight = BapaProver(timeout=0.1)
    Dispatcher([tight], cache=cache).prove_all([seq])
    entry = cache.lookup(seq, "bapa", tight.options_signature())
    assert entry is not None and entry.verdict is Verdict.TIMEOUT


def test_full_budget_timeouts_are_cached_even_under_sequent_budget():
    """The converse of the truncation rule: when the sequent budget's
    remaining slack at prove-start covers the prover's whole configured
    timeout, a TIMEOUT is a genuine (cacheable) verdict — the budget never
    clipped the attempt.  Blanket-suppressing every TIMEOUT whenever
    ``sequent_budget`` was set made budgeted cold runs re-pay their
    timeouts on every warm rerun."""
    from repro.provers.cache import SequentCache

    cache = SequentCache()
    seq = _bapa_adversarial()
    prover = BapaProver(timeout=0.1)
    # Budget far above the prover's own timeout: slack >= timeout at start.
    first = Dispatcher([prover], cache=cache, sequent_budget=30.0).prove_all([seq])
    assert first.stats["bapa"].attempted == 1
    entry = cache.lookup(seq, "bapa", prover.options_signature())
    assert entry is not None and entry.verdict is Verdict.TIMEOUT
    assert not first.outcomes[0].answers[0].truncated
    # The warm rerun replays the cached TIMEOUT instead of re-grinding.
    warm = Dispatcher(
        [BapaProver(timeout=0.1)], cache=cache, sequent_budget=30.0
    ).prove_all([seq])
    assert warm.cache_stats.hits == 1
    assert not warm.stats


def test_interactive_timeout_is_reported_as_timeout_not_unknown():
    """Budget expiry inside the kernel's `auto` tactic must surface as a
    TIMEOUT verdict (budget exhausted), not UNKNOWN (cannot prove)."""
    prover = InteractiveProver(timeout=0.05)
    answer = prover.prove(_fol_adversarial())
    assert answer.verdict is Verdict.TIMEOUT, answer
    assert "auto interrupted" in answer.detail or answer.detail


def test_timeout_counts_against_prover_stats_time():
    """Budget consumed by a cut-off attempt still shows up in ProverStats."""
    result = Dispatcher([BapaProver(timeout=0.1)]).prove_all([_bapa_adversarial()])
    stats = result.stats["bapa"]
    assert stats.attempted == 1 and stats.proved == 0
    assert 0.0 < stats.time <= 0.1 + EPSILON
