"""Cache/dispatch accounting fixes, pinned.

Two regressions this file guards:

* ``SequentOutcome.from_cache`` once answered True only for *proved*
  outcomes, so cached UNKNOWN/TIMEOUT replays were invisible to hit
  accounting — a warm re-run of a batch with open obligations looked
  half-cold.  Now any outcome decided by a replayed answer counts.
* ``SequentCache._disk_write`` once staged every write of a key under one
  shared temp name (``<key>.tmp``): two processes storing the same key
  could interleave ``write_text`` / ``replace`` and publish a torn entry.
  Staging names are now unique per writer (pid + per-process counter), so
  the final ``os.replace`` always publishes a fully written payload.  The
  multi-process hammer here exercises exactly that interleaving.
"""

import json
import multiprocessing
import os
from pathlib import Path

import pytest

from repro.core.report import MethodReport
from repro.form.parser import parse_formula as parse
from repro.provers.base import ProverAnswer, Verdict
from repro.provers.cache import SequentCache
from repro.provers.dispatcher import Dispatcher, make_provers
from repro.vcgen.sequent import sequent

PROVERS = ["syntactic", "smt"]
OPTIONS_SIG = "timeout=2.0"


def _corpus():
    return [
        sequent([parse("a < b"), parse("b < c")], parse(f"a < c + {k}"))
        for k in range(8)
    ]


# -- from_cache counts every replay, not just proofs --------------------------


def test_cached_nonproof_verdict_counts_as_replay():
    cache = SequentCache()
    unprovable = [sequent([], parse("q"))]
    cold = Dispatcher(make_provers(PROVERS), cache=cache).prove_all(unprovable)
    assert cold.proved == 0 and cold.replayed == 0

    warm = Dispatcher(make_provers(PROVERS), cache=cache).prove_all(unprovable)
    (outcome,) = warm.outcomes
    assert not outcome.proved
    assert outcome.from_cache  # regression: used to be False for non-proofs
    assert warm.replayed == 1
    assert warm.proved_from_cache == 0  # the proofs-only counter is unchanged
    assert warm.cache_stats.hits >= 1


def test_warm_mixed_batch_replays_everything():
    """Warm traffic = replayed outcomes whatever the verdict: a batch with
    one proof and one open obligation replays both on the second run."""
    cache = SequentCache()
    batch = [_corpus()[0], sequent([], parse("q"))]
    Dispatcher(make_provers(PROVERS), cache=cache).prove_all(batch)
    warm = Dispatcher(make_provers(PROVERS), cache=cache).prove_all(batch)
    assert warm.replayed == 2
    assert warm.proved_from_cache == 1
    assert all(outcome.from_cache for outcome in warm.outcomes)
    assert not warm.stats  # no live prover ran


def test_report_format_marks_nonproof_replays():
    report = MethodReport(
        class_name="C", method_name="m", total_sequents=2, proved_sequents=1,
        prover_order=["smt"], unproved_origins=["goal 2"],
        cache_hits=2, cache_misses=0, proved_from_cache=1, replayed_sequents=2,
    )
    assert "1 proofs replayed (+1 non-proof replays)" in report.format()
    report.replayed_sequents = 1  # proofs only: no marker
    assert "non-proof" not in report.format()


# -- unique per-writer staging names ------------------------------------------


def test_disk_write_stages_under_unique_per_writer_names(tmp_path, monkeypatch):
    recorded = []
    original = Path.write_text

    def spy(self, *args, **kwargs):
        recorded.append(self.name)
        return original(self, *args, **kwargs)

    monkeypatch.setattr(Path, "write_text", spy)
    seq = _corpus()[0]
    answer = ProverAnswer(Verdict.PROVED, "smt", time=0.0)
    SequentCache(cache_dir=tmp_path).store(seq, "smt", answer, OPTIONS_SIG)
    SequentCache(cache_dir=tmp_path).store(seq, "smt", answer, OPTIONS_SIG)

    staged = [name for name in recorded if name.endswith(".tmp")]
    assert len(staged) == 2
    assert len(set(staged)) == 2  # never one shared staging file per key
    key = SequentCache.key(seq, "smt", OPTIONS_SIG)
    assert f"{key}.tmp" not in staged  # the old colliding name
    assert all(f".{os.getpid()}." in name for name in staged)
    assert not list(tmp_path.glob("*.tmp"))  # both were published


def test_disk_write_failure_leaves_no_staging_file(tmp_path, monkeypatch):
    def refuse(self, target):
        raise OSError("disk full")

    monkeypatch.setattr(Path, "replace", refuse)
    cache = SequentCache(cache_dir=tmp_path)
    seq = _corpus()[0]
    assert cache.store(seq, "smt", ProverAnswer(Verdict.PROVED, "smt"), OPTIONS_SIG)
    assert not list(tmp_path.iterdir())  # no entry, but also no stray .tmp
    # The memory tier still serves the verdict.
    assert cache.lookup(seq, "smt", OPTIONS_SIG) is not None


# -- multi-process hammer -----------------------------------------------------


def _hammer(cache_dir, rounds, queue):
    """One hammer process: repeatedly store every key, then re-read all of
    them through a *fresh* cache (empty memory tier, so every lookup takes
    the disk path) while the sibling processes keep overwriting the same
    files.  Reports the number of failed reads (lost or torn entries)."""
    try:
        corpus = _corpus()
        answer = ProverAnswer(Verdict.PROVED, "smt", time=0.001, detail="hammer")
        writer = SequentCache(cache_dir=cache_dir)
        for seq in corpus:
            writer.store(seq, "smt", answer, OPTIONS_SIG)
        bad = 0
        for _ in range(rounds):
            for seq in corpus:
                writer.store(seq, "smt", answer, OPTIONS_SIG)
            reader = SequentCache(cache_dir=cache_dir)
            for seq in corpus:
                got = reader.lookup(seq, "smt", OPTIONS_SIG)
                if got is None or got.verdict is not Verdict.PROVED:
                    bad += 1
        queue.put(bad)
    except BaseException as exc:  # noqa: BLE001 - surface in the parent
        queue.put(repr(exc))


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="hammer relies on fork so test-module functions need no import",
)
def test_multiprocess_hammer_no_lost_or_torn_entries(tmp_path):
    ctx = multiprocessing.get_context("fork")
    queue = ctx.SimpleQueue()
    procs = [
        ctx.Process(target=_hammer, args=(str(tmp_path), 40, queue))
        for _ in range(4)
    ]
    for proc in procs:
        proc.start()
    results = [queue.get() for _ in procs]
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0

    assert results == [0, 0, 0, 0], results
    # Every published entry is complete, valid JSON with the stored verdict,
    # and no staging file was left behind.
    entries = list(tmp_path.glob("*.json"))
    assert len(entries) == 8
    for path in entries:
        payload = json.loads(path.read_text())
        assert payload["verdict"] == Verdict.PROVED.value
        assert payload["detail"] == "hammer"
    assert not list(tmp_path.glob("*.tmp"))
    # A fresh cache replays the whole corpus from the disk tier.
    fresh = SequentCache(cache_dir=tmp_path)
    assert all(fresh.lookup(seq, "smt", OPTIONS_SIG) for seq in _corpus())
    assert fresh.stats.disk_hits == 8
