"""The parallel cached dispatch subsystem: cache semantics, stats parity,
stop-on-failure under parallelism, and the stable sequent digests that key
the cache."""

import pytest

from repro.form.parser import parse_formula as parse
from repro.provers.base import ProverAnswer, Verdict
from repro.provers.cache import CacheStats, SequentCache
from repro.provers.dispatcher import (
    Dispatcher,
    ParallelDispatcher,
    make_provers,
)
from repro.vcgen.sequent import Labeled, Sequent, sequent


def _batch():
    """A small mixed batch: syntactic-provable, smt-provable, unprovable."""
    return [
        sequent([parse("p")], parse("p")),
        sequent([parse("x < y"), parse("y < z")], parse("x < z")),
        sequent([parse("a = b")], parse("b = a")),
        sequent([], parse("q")),  # stays unproved
        sequent([parse("u : A Un {}")], parse("u : A")),
    ]


def _shape(result):
    return [(o.proved, o.prover) for o in result.outcomes]


def _stat_counts(result):
    return {name: (s.attempted, s.proved) for name, s in result.stats.items()}


# -- sequent digests (cache keys) ---------------------------------------------------


def test_digest_is_stable_across_calls():
    seq = sequent([parse("x : A"), parse("A subseteq B")], parse("x : B"))
    assert seq.digest() == seq.digest()


def test_digest_ignores_assumption_order():
    a, b = parse("x : A"), parse("A subseteq B")
    goal = parse("x : B")
    assert sequent([a, b], goal).digest() == sequent([b, a], goal).digest()


def test_digest_alpha_renames_generated_variables():
    """Splitter fresh names (x$n) and havoc incarnations (v#n) are normalised."""
    one = sequent([parse("x$1 : A")], parse("x$1 : B"))
    two = sequent([parse("x$7 : A")], parse("x$7 : B"))
    assert one.digest() == two.digest()
    # Havoc incarnations carry a '#' which only the VC generator introduces
    # (the formula parser has no syntax for it) — build the terms directly.
    from repro.form import ast as F

    def incarnation(n, m):
        return sequent(
            [F.Eq(F.Var(f"first#{n}"), F.NULL)],
            F.Eq(F.Var(f"content#{m}"), F.EMPTYSET),
        )

    assert incarnation(2, 3).digest() == incarnation(9, 4).digest()


def test_digest_invariant_under_renumbering_across_assumptions():
    """Canonical indices must track assumptions, not their raw numbering:
    (x$1 > y, x$2 < y) and its renumbering (x$2 > y, x$1 < y) are the same
    sequent up to alpha-renaming."""
    one = sequent([parse("x$1 > y"), parse("x$2 < y")], parse("p"))
    two = sequent([parse("x$2 > y"), parse("x$1 < y")], parse("p"))
    assert one.digest() == two.digest()


def test_digest_uses_occurrence_signatures_for_tied_assumptions():
    """Masked-identical assumptions must not fall back to raw-numbering
    order: x$1 (occurring in R and S) and x$2 (only in R) are distinguished
    by their occurrence signatures, so any renumbering digests identically."""
    one = sequent([parse("R x$1"), parse("R x$2"), parse("S x$1")], parse("G y"))
    two = sequent([parse("R x$5"), parse("R x$3"), parse("S x$5")], parse("G y"))
    assert one.digest() == two.digest()


def test_digest_preserves_cross_formula_correlation():
    """Variables shared across assumptions are part of the identity: a
    sequent where S sees the same variable as R must not collide with one
    where it sees a different variable."""
    shared = sequent([parse("R x$1"), parse("S x$1")], parse("p"))
    distinct = sequent([parse("R x$1"), parse("S x$2")], parse("p"))
    assert shared.digest() != distinct.digest()


def test_digest_distinguishes_different_goals():
    assert sequent([], parse("p")).digest() != sequent([], parse("q")).digest()


def test_digest_distinguishes_hints():
    base = Sequent(assumptions=(Labeled(parse("p"), ("l1",)),), goal=Labeled(parse("p")))
    hinted = Sequent(
        assumptions=(Labeled(parse("p"), ("l1",)),),
        goal=Labeled(parse("p")),
        hints=("l1",),
    )
    assert base.digest() != hinted.digest()


# -- cache semantics ----------------------------------------------------------------


def test_cache_miss_then_hit():
    cache = SequentCache()
    seq = sequent([parse("p")], parse("p"))
    assert cache.lookup(seq, "syntactic") is None
    stored = cache.store(
        seq, "syntactic", ProverAnswer(Verdict.PROVED, "syntactic", time=0.1)
    )
    assert stored
    entry = cache.lookup(seq, "syntactic")
    assert entry is not None and entry.verdict is Verdict.PROVED
    answer = entry.to_answer("syntactic")
    assert answer.cached and answer.proved and answer.time == 0.0


def test_cache_key_includes_prover_and_options():
    cache = SequentCache()
    seq = sequent([parse("p")], parse("p"))
    cache.store(seq, "smt", ProverAnswer(Verdict.PROVED, "smt"), "timeout=1.0")
    assert cache.lookup(seq, "smt", "timeout=1.0") is not None
    assert cache.lookup(seq, "smt", "timeout=9.0") is None  # other options
    assert cache.lookup(seq, "fol", "timeout=1.0") is None  # other prover


def test_cache_timeout_verdicts_optional():
    strict = SequentCache(cache_timeouts=False)
    seq = sequent([], parse("p"))
    assert not strict.store(seq, "smt", ProverAnswer(Verdict.TIMEOUT, "smt"))
    default = SequentCache()
    assert default.store(seq, "smt", ProverAnswer(Verdict.TIMEOUT, "smt"))


def test_cache_lru_eviction():
    cache = SequentCache(max_entries=2)
    seqs = [sequent([], parse(name)) for name in ("p1", "p2", "p3")]
    for seq in seqs:
        cache.store(seq, "x", ProverAnswer(Verdict.UNKNOWN, "x"))
    assert len(cache) == 2
    assert cache.lookup(seqs[0], "x") is None  # oldest entry evicted


def test_cache_disk_tier_survives_new_cache_instance(tmp_path):
    seq = sequent([parse("p")], parse("p"))
    first = SequentCache(cache_dir=tmp_path)
    first.store(seq, "syntactic", ProverAnswer(Verdict.PROVED, "syntactic"))
    second = SequentCache(cache_dir=tmp_path)  # fresh memory tier
    entry = second.lookup(seq, "syntactic")
    assert entry is not None and entry.verdict is Verdict.PROVED
    assert second.stats.disk_hits == 1


def test_options_signature_covers_search_bounds():
    """Verdict-affecting options beyond the timeout must rotate cache keys."""
    from repro.fol.prover import FirstOrderProver
    from repro.interactive.kernel import ProofScript
    from repro.interactive.lemma_store import LemmaStore
    from repro.interactive.prover import InteractiveProver
    from repro.mona.prover import MonaProver
    from repro.smt.prover import SmtProver

    assert (
        FirstOrderProver(max_processed=10).options_signature()
        != FirstOrderProver(max_processed=1000).options_signature()
    )
    assert (
        MonaProver(max_states=100).options_signature()
        != MonaProver(max_states=20000).options_signature()
    )
    assert (
        SmtProver(max_theory_iterations=5).options_signature()
        != SmtProver(max_theory_iterations=300).options_signature()
    )
    # A grown lemma store must invalidate cached interactive verdicts.
    store = LemmaStore()
    empty_sig = InteractiveProver(store=store).options_signature()
    store.add("fp", ProofScript(name="fp"))
    assert InteractiveProver(store=store).options_signature() != empty_sig


def test_cache_stats_hit_rate():
    stats = CacheStats(hits=3, misses=1)
    assert stats.hit_rate == pytest.approx(0.75)
    assert CacheStats().hit_rate == 0.0


# -- cached dispatch ----------------------------------------------------------------


def test_cache_hits_do_not_double_count_prover_stats():
    cache = SequentCache()
    seqs = _batch()
    first = Dispatcher(make_provers(["syntactic", "smt"]), cache=cache).prove_all(seqs)
    second = Dispatcher(make_provers(["syntactic", "smt"]), cache=cache).prove_all(seqs)
    # First run: all lookups miss, provers attempt everything.
    assert first.cache_stats.hits == 0
    assert first.cache_stats.misses > 0
    # Second run: every verdict replays; no prover is attempted at all.
    assert second.cache_stats.misses == 0
    assert second.cache_stats.hits == first.cache_stats.misses
    assert not second.stats  # zero ProverStats recorded on pure replay
    assert second.proved_from_cache == second.proved == first.proved
    assert second.proved_live == 0
    assert _shape(second) == _shape(first)


def test_cached_dispatch_preserves_outcomes():
    cache = SequentCache()
    baseline = Dispatcher(make_provers(["syntactic", "smt"])).prove_all(_batch())
    warm = Dispatcher(make_provers(["syntactic", "smt"]), cache=cache)
    warm.prove_all(_batch())
    replayed = warm.prove_all(_batch())
    assert _shape(replayed) == _shape(baseline)


# -- parallel dispatch --------------------------------------------------------------


def test_parallel_workers1_matches_sequential():
    seqs = _batch()
    sequential = Dispatcher(make_provers(["syntactic", "smt"])).prove_all(seqs)
    parallel = ParallelDispatcher.from_names(["syntactic", "smt"], workers=1).prove_all(seqs)
    assert _shape(parallel) == _shape(sequential)
    assert _stat_counts(parallel) == _stat_counts(sequential)


@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_many_workers_matches_sequential(workers):
    seqs = _batch()
    sequential = Dispatcher(make_provers(["syntactic", "smt"])).prove_all(seqs)
    parallel = ParallelDispatcher.from_names(
        ["syntactic", "smt"], workers=workers
    ).prove_all(seqs)
    assert _shape(parallel) == _shape(sequential)
    assert _stat_counts(parallel) == _stat_counts(sequential)
    assert parallel.workers == workers


def test_parallel_stop_on_failure_truncates_like_sequential():
    seqs = _batch()  # the unprovable sequent sits at index 3
    sequential = Dispatcher(
        make_provers(["syntactic"]), stop_on_failure=True
    ).prove_all(seqs)
    parallel = ParallelDispatcher.from_names(
        ["syntactic"], workers=3, stop_on_failure=True
    ).prove_all(seqs)
    assert _shape(parallel) == _shape(sequential)
    assert not parallel.outcomes[-1].proved
    assert parallel.total < len(seqs)


def test_parallel_with_shared_cache_replays_everything():
    cache = SequentCache()
    seqs = _batch()
    ParallelDispatcher.from_names(["syntactic", "smt"], workers=2, cache=cache).prove_all(seqs)
    replay = ParallelDispatcher.from_names(
        ["syntactic", "smt"], workers=2, cache=cache
    ).prove_all(seqs)
    assert replay.proved_live == 0
    assert replay.cache_stats.misses == 0
    assert not replay.stats


def test_parallel_process_backend_matches_sequential():
    seqs = _batch()
    sequential = Dispatcher(make_provers(["syntactic", "smt"])).prove_all(seqs)
    parallel = ParallelDispatcher.from_names(
        ["syntactic", "smt"], workers=2, backend="process"
    ).prove_all(seqs)
    assert _shape(parallel) == _shape(sequential)
    assert _stat_counts(parallel) == _stat_counts(sequential)


def test_parallel_process_backend_replays_cached_prefix():
    """A partially cached chain only re-runs the uncached suffix: the cached
    prefix is replayed as cached answers, not recomputed."""
    cache = SequentCache()
    seqs = [sequent([parse("x < y"), parse("y < z")], parse("x < z"))]
    # Warm only the syntactic (first) prover's verdict.
    syn = make_provers(["syntactic"])[0]
    first = syn.prove(seqs[0])
    assert not first.proved
    cache.store(seqs[0], "syntactic", first, syn.options_signature())
    result = ParallelDispatcher.from_names(
        ["syntactic", "smt"], workers=2, backend="process", cache=cache
    ).prove_all(seqs)
    (outcome,) = result.outcomes
    assert [a.prover for a in outcome.answers] == ["syntactic", "smt"]
    assert outcome.answers[0].cached and not outcome.answers[1].cached
    assert outcome.proved and outcome.prover == "smt"
    # Only the live smt answer reaches ProverStats.
    assert set(result.stats) == {"smt"}


def test_parallel_process_backend_requires_names():
    with pytest.raises(ValueError):
        ParallelDispatcher(lambda: make_provers(["syntactic"]), backend="process")


def test_parallel_rejects_unknown_backend():
    with pytest.raises(ValueError):
        ParallelDispatcher.from_names(["syntactic"], backend="gpu")


def test_sequent_budget_limits_chain():
    """With a zero per-sequent budget no prover is ever attempted."""
    seqs = _batch()
    result = Dispatcher(
        make_provers(["syntactic", "smt"]), sequent_budget=0.0
    ).prove_all(seqs)
    assert result.proved == 0
    assert all(o.budget_exhausted for o in result.outcomes)
    assert not result.stats


# -- verifier plumbing --------------------------------------------------------------


def test_verify_plumbs_workers_and_cache():
    from repro import verify
    from repro import suite

    fast = {"smt": {"timeout": 2.0}}
    cache = SequentCache()
    source = suite.source("SizedList")
    first = verify(source, method="size", class_name="SizedList",
                   provers=["smt"], prover_options=fast, cache=cache, workers=2)
    second = verify(source, method="size", class_name="SizedList",
                    provers=["smt"], prover_options=fast, cache=cache, workers=2)
    assert first.succeeded and second.succeeded
    assert second.proved_live == 0
    assert second.cache_hit_rate == 1.0
    assert second.workers == 2
    text = second.format()
    assert "Sequent cache" in text and "workers" in text
