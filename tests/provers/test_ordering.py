"""The learned prover ordering: feature buckets, the three-tier deterministic
ranking, JSON persistence, and which answers teach it anything."""

import json

from repro.form.parser import parse_formula as parse
from repro.provers.base import ProverAnswer, Verdict
from repro.provers.ordering import (
    DEFAULT_FILENAME,
    FORMAT_VERSION,
    ProverOrdering,
    sequent_features,
)
from repro.vcgen.sequent import sequent

NAMES = ["syntactic", "smt", "fol", "mona"]


# -- feature extraction -------------------------------------------------------


def test_features_are_stable_and_readable():
    seq = sequent([parse("x : A")], parse("x : B"))
    key = sequent_features(seq)
    assert key == sequent_features(seq)
    assert key.startswith("head=elem;")
    assert ";frag=set;" in key
    assert key.endswith(";asm=1-3;qd=0")


def test_features_track_goal_head_and_fragments():
    arith = sequent([parse("a < b")], parse("a + 1 <= b"))
    card = sequent([], parse("card(S) >= 0"))
    quant = sequent([], parse("ALL x. x : A --> x : A"))
    assert "head=lte" in sequent_features(arith)
    assert "frag=arith" in sequent_features(arith)
    assert "card" in sequent_features(card)
    assert "head=all" in sequent_features(quant)
    assert "qd=1" in sequent_features(quant)


def test_alpha_variants_share_a_bucket():
    one = sequent([parse("x$1 : A")], parse("x$1 : B"))
    two = sequent([parse("x$9 : A")], parse("x$9 : B"))
    assert sequent_features(one) == sequent_features(two)


def test_assumption_counts_are_bucketed():
    goal = parse("p")
    few = sequent([parse(f"a{i} < b{i}") for i in range(2)], goal)
    many = sequent([parse(f"a{i} < b{i}") for i in range(20)], goal)
    assert ";asm=1-3;" in sequent_features(few)
    assert ";asm=17+;" in sequent_features(many)


# -- ranking ------------------------------------------------------------------


def test_empty_table_ranks_in_portfolio_order():
    ordering = ProverOrdering()
    seq = sequent([parse("p")], parse("p"))
    assert ordering.rank(seq, NAMES) == [0, 1, 2, 3]


def test_proven_winners_rank_first_by_rate_then_time():
    ordering = ProverOrdering()
    bucket = "head=eq;frag=none;asm=0;qd=0"
    # mona: 2/2 proofs but slow; fol: 2/2 and fast; smt: 1/2.
    for _ in range(2):
        ordering.observe_outcome(bucket, "mona", proved=True, time=1.0)
        ordering.observe_outcome(bucket, "fol", proved=True, time=0.1)
    ordering.observe_outcome(bucket, "smt", proved=True, time=0.1)
    ordering.observe_outcome(bucket, "smt", proved=False, time=0.1)
    ranked = ordering.rank_bucket(bucket, NAMES)
    # fol (rate 1.0, fast) > mona (rate 1.0, slow) > smt (rate 0.5), then
    # syntactic (unknown) keeps its portfolio slot among the rest.
    assert ranked == [2, 3, 1, 0]


def test_hopeless_provers_sink_below_unknowns():
    ordering = ProverOrdering(min_attempts=3)
    bucket = "head=atom;frag=none;asm=0;qd=0"
    for _ in range(3):
        ordering.observe_outcome(bucket, "syntactic", proved=False, time=0.01)
    ranked = ordering.rank_bucket(bucket, NAMES)
    assert ranked == [1, 2, 3, 0]
    # Below min_attempts the same record is still "unknown", not hopeless.
    fresh = ProverOrdering(min_attempts=3)
    fresh.observe_outcome(bucket, "syntactic", proved=False, time=0.01)
    assert fresh.rank_bucket(bucket, NAMES) == [0, 1, 2, 3]


def test_tie_break_is_portfolio_position():
    ordering = ProverOrdering()
    bucket = "head=eq;frag=none;asm=0;qd=0"
    ordering.observe_outcome(bucket, "fol", proved=True, time=0.5)
    ordering.observe_outcome(bucket, "smt", proved=True, time=0.5)
    # Identical rate and mean time: the earlier portfolio slot wins.
    assert ordering.rank_bucket(bucket, NAMES)[:2] == [1, 2]


# -- what teaches the table ---------------------------------------------------


def test_observe_skips_uninformative_answers():
    ordering = ProverOrdering()
    seq = sequent([parse("p")], parse("p"))

    cached = ProverAnswer(Verdict.PROVED, "smt", time=0.0)
    cached.cached = True
    ordering.observe(seq, cached)

    truncated = ProverAnswer(Verdict.TIMEOUT, "smt", time=0.1)
    truncated.truncated = True
    ordering.observe(seq, truncated)

    ordering.observe(seq, ProverAnswer(Verdict.CANCELLED, "smt"))
    ordering.observe(seq, ProverAnswer(Verdict.STATIC, "static"))
    assert ordering.bucket_count() == 0
    assert ordering.dirty == 0

    ordering.observe(seq, ProverAnswer(Verdict.PROVED, "smt", time=0.1))
    assert ordering.bucket_count() == 1
    assert ordering.dirty == 1


# -- persistence --------------------------------------------------------------


def test_save_load_roundtrip(tmp_path):
    path = str(tmp_path / DEFAULT_FILENAME)
    ordering = ProverOrdering(path=path)
    bucket = "head=eq;frag=arith;asm=1-3;qd=0"
    ordering.observe_outcome(bucket, "smt", proved=True, time=0.25)
    ordering.observe_outcome(bucket, "fol", proved=False, time=1.0)
    assert ordering.save()
    assert ordering.dirty == 0

    reloaded = ProverOrdering(path=path)  # __post_init__ loads
    assert reloaded.bucket_count() == 1
    assert reloaded.rank_bucket(bucket, NAMES)[0] == 1
    snap = reloaded.snapshot()[bucket]
    assert snap["smt"]["proved"] == 1
    assert snap["fol"]["attempted"] == 1


def test_wrong_version_and_garbage_files_are_discarded(tmp_path):
    versioned = tmp_path / "old.json"
    versioned.write_text(json.dumps({"version": FORMAT_VERSION + 1, "buckets": {
        "head=eq;frag=none;asm=0;qd=0": {"smt": {"attempted": 1, "proved": 1, "time": 0.1}}
    }}))
    assert ProverOrdering(path=str(versioned)).bucket_count() == 0
    garbage = tmp_path / "garbage.json"
    garbage.write_text("{not json")
    assert ProverOrdering(path=str(garbage)).bucket_count() == 0


def test_save_without_path_returns_false():
    ordering = ProverOrdering()
    ordering.observe_outcome("b", "smt", proved=True, time=0.1)
    assert not ordering.save()


def test_racing_dispatch_persists_the_table(tmp_path):
    """End to end: a racing dispatch with a pathed ordering leaves a valid
    table on disk that a fresh dispatcher loads and ranks from."""
    from repro.provers.dispatcher import Dispatcher, make_provers

    path = str(tmp_path / DEFAULT_FILENAME)
    corpus = [sequent([parse("a < b"), parse("b < c")], parse("a < c"))]
    Dispatcher(
        make_provers(["syntactic", "smt"], smt={"timeout": 2.0}),
        race=2, ordering=ProverOrdering(path=path),
    ).prove_all(corpus)
    reloaded = ProverOrdering(path=path)
    assert reloaded.bucket_count() >= 1
    bucket = sequent_features(corpus[0])
    # smt proved it live; syntactic answered UNKNOWN: smt must rank first.
    assert reloaded.rank_bucket(bucket, ["syntactic", "smt"])[0] == 1
