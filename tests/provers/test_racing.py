"""Racing dispatch (race=K): deterministic winners, prompt cancellation via
the shared-token Deadline contract, CANCELLED accounting (never cached,
never a cache miss), wave fall-through completeness, and cross-backend
stats parity on a seeded corpus.

The scripted provers here exercise the racing machinery with controlled
timing; the cross-backend property tests use the real portfolio so the
process backend (which rebuilds provers from the registry) is covered too.
"""

import random
import threading
import time

import pytest

from repro.form.parser import parse_formula as parse
from repro.provers.base import Deadline, Prover, ProverAnswer, Verdict
from repro.provers.cache import SequentCache
from repro.provers.dispatcher import (
    Dispatcher,
    ParallelDispatcher,
    _race_prover_chain,
    make_provers,
)
from repro.provers.ordering import ProverOrdering
from repro.vcgen.sequent import sequent

#: Scheduling slack tolerated by the timing assertions below.
EPSILON = 0.25


# -- scripted provers ---------------------------------------------------------


class InstantProver(Prover):
    """Proves every sequent immediately, without ever polling the deadline."""

    name = "instant"

    def __init__(self, timeout: float = 10.0, verdict: Verdict = Verdict.PROVED):
        super().__init__(timeout=timeout)
        self.verdict = verdict

    def attempt(self, sequent, deadline=None):
        return ProverAnswer(self.verdict, self.name)


class InstantProver2(InstantProver):
    name = "instant2"


class SlowProver(Prover):
    """Grinds in small checkpointed steps until it proves (or is stopped).

    ``grind`` is how long the prover needs before it would answer PROVED;
    the checkpoint poll every ``step`` seconds is its cancellation
    granularity.
    """

    name = "slow"
    grind = 5.0
    step = 0.005
    final = Verdict.PROVED

    def attempt(self, sequent, deadline=None):
        elapsed = 0.0
        while elapsed < self.grind:
            deadline.checkpoint(detail=f"{elapsed:.3f}s ground")
            time.sleep(self.step)
            elapsed += self.step
        return ProverAnswer(self.final, self.name)


class FastProver(Prover):
    """Proves after a short checkpointed delay (long enough to overlap)."""

    name = "fast"
    delay = 0.15

    def attempt(self, sequent, deadline=None):
        elapsed = 0.0
        while elapsed < self.delay:
            deadline.checkpoint()
            time.sleep(0.005)
            elapsed += 0.005
        return ProverAnswer(Verdict.PROVED, self.name)


class UnknownProver(Prover):
    name = "unknown1"

    def attempt(self, sequent, deadline=None):
        return ProverAnswer(Verdict.UNKNOWN, self.name)


class UnknownProver2(UnknownProver):
    name = "unknown2"


def _seq(tag="p"):
    return sequent([parse(tag)], parse(tag))


# -- deterministic winners ----------------------------------------------------


def test_race_winner_is_wave_order_not_completion_order():
    """Both racers prove; the rank-0 prover must win every time, however the
    threads are actually scheduled."""
    for _ in range(5):
        outcome = _race_prover_chain(
            [InstantProver(), InstantProver2()], _seq(), race=2, stagger=0.0
        )
        assert outcome.proved and outcome.prover == "instant"


def test_single_prover_wave_is_not_a_race():
    result = Dispatcher([InstantProver()], race=2).prove_all([_seq()])
    assert result.proved == 1
    assert result.races_run == 0
    assert result.race_wins == {}
    assert result.cancelled_answers == 0


def test_race_falls_through_waves_to_later_provers():
    """A wave with no proof must not settle the sequent: the chain falls
    through until some prover proves, keeping proved counts identical to
    fixed-order dispatch."""
    provers = [UnknownProver(), UnknownProver2(), InstantProver()]
    result = Dispatcher(provers, race=2, race_stagger=0.0).prove_all([_seq()])
    (outcome,) = result.outcomes
    assert outcome.proved and outcome.prover == "instant"
    verdicts = {a.prover: a.verdict for a in outcome.answers}
    assert verdicts["unknown1"] is Verdict.UNKNOWN
    assert verdicts["unknown2"] is Verdict.UNKNOWN


# -- cancellation -------------------------------------------------------------


def test_losing_racer_is_cancelled_and_reclaims_budget():
    slow, fast = SlowProver(timeout=10.0), FastProver(timeout=10.0)
    result = Dispatcher([slow, fast], race=2, race_stagger=0.01).prove_all([_seq()])
    (outcome,) = result.outcomes
    assert outcome.proved and outcome.prover == "fast"
    assert outcome.race_won_by == "fast"
    slow_answer = next(a for a in outcome.answers if a.prover == "slow")
    assert slow_answer.verdict is Verdict.CANCELLED
    # The slow prover had a 10s slice and burned well under a second of it.
    assert outcome.reclaimed > 8.0
    assert result.races_run == 1
    assert result.race_wins == {"fast": 1}
    assert result.cancelled_answers == 1
    # Cancelled attempts are not Figure 7 attempts: only the dedicated
    # counter moves, and the winner's stats are untouched by the loss.
    assert result.stats["slow"].cancelled == 1
    assert result.stats["slow"].attempted == 0
    assert result.stats["fast"].attempted == 1
    assert result.stats["fast"].proved == 1


def test_no_prover_overruns_cancellation_beyond_checkpoint_granularity():
    """Once the winner proves, every loser must unwind within its checkpoint
    polling interval (plus scheduling slack) — not run out its own budget."""
    slow, fast = SlowProver(timeout=30.0), FastProver(timeout=10.0)
    start = time.perf_counter()
    outcome = _race_prover_chain([slow, fast], _seq(), race=2, stagger=0.01)
    elapsed = time.perf_counter() - start
    assert outcome.proved and outcome.prover == "fast"
    slow_answer = next(a for a in outcome.answers if a.prover == "slow")
    assert slow_answer.verdict is Verdict.CANCELLED
    # The whole wave (winner's delay + loser unwinding) settles promptly:
    # nowhere near the slow prover's 5s grind, let alone its 30s budget.
    assert elapsed <= FastProver.delay + EPSILON
    assert slow_answer.time <= FastProver.delay + EPSILON


def test_cancelled_unwind_carries_cancelled_verdict_not_timeout():
    """Cancellation must surface as CANCELLED (never cached), not TIMEOUT
    (cacheable): the deadline had time left when the token fired."""
    cancel = threading.Event()
    deadline = Deadline.after(60.0).with_cancel(cancel)
    cancel.set()
    answer = SlowProver(timeout=60.0).prove(_seq(), deadline=deadline)
    assert answer.verdict is Verdict.CANCELLED
    assert not answer.truncated


# -- CANCELLED and the cache --------------------------------------------------


def test_cancelled_answers_never_cached_and_never_a_miss():
    cache = SequentCache()
    slow, fast = SlowProver(timeout=10.0), FastProver(timeout=10.0)
    seq = _seq()
    result = Dispatcher([slow, fast], race=2, race_stagger=0.01, cache=cache).prove_all([seq])
    (outcome,) = result.outcomes
    assert any(a.verdict is Verdict.CANCELLED for a in outcome.answers)
    # The loser's cancellation left no cache entry behind...
    assert cache.lookup(seq, "slow", slow.options_signature()) is None
    # ...and was not billed as a miss either: only the winner's live proof
    # missed (and was then stored).
    assert result.cache_stats.misses == 1
    assert result.cache_stats.hits == 0
    entry = cache.lookup(seq, "fast", fast.options_signature())
    assert entry is not None and entry.verdict is Verdict.PROVED


def test_cache_store_refuses_cancelled_verdicts():
    cache = SequentCache()
    assert not cache.store(
        _seq(), "slow", ProverAnswer(Verdict.CANCELLED, "slow")
    )


def test_warm_cache_settles_without_racing():
    """A cached PROVED anywhere in the ranked order wins outright: the warm
    rerun races nothing, cancels nothing and runs no prover."""
    cache = SequentCache()
    provers = [SlowProver(timeout=10.0), FastProver(timeout=10.0)]
    seq = _seq()
    Dispatcher(provers, race=2, race_stagger=0.01, cache=cache).prove_all([seq])
    warm = Dispatcher(provers, race=2, race_stagger=0.01, cache=cache).prove_all([seq])
    assert warm.proved == 1
    assert warm.proved_from_cache == 1
    assert warm.races_run == 0
    assert warm.cancelled_answers == 0
    assert not warm.stats


def test_contended_wave_timeouts_are_truncated_and_not_cached():
    """A TIMEOUT under wave contention reflects the race (the racers share
    the interpreter), not the prover's configured budget: it must carry the
    truncated flag and stay out of the cache."""

    class TimingOut(SlowProver):
        name = "timingout"
        final = Verdict.PROVED  # never reached: timeout fires first

    cache = SequentCache()
    timingout = TimingOut(timeout=0.08)
    fast = FastProver(timeout=10.0)
    seq = _seq()
    result = Dispatcher(
        [timingout, fast], race=2, race_stagger=0.0, cache=cache
    ).prove_all([seq])
    (outcome,) = result.outcomes
    answer = next(a for a in outcome.answers if a.prover == "timingout")
    assert answer.verdict is Verdict.TIMEOUT
    assert answer.truncated
    assert cache.lookup(seq, "timingout", timingout.options_signature()) is None


# -- dedup fan-out ------------------------------------------------------------


def test_dedup_replay_drops_cancelled_answers():
    """Duplicates of a raced representative replay its real verdicts only:
    no phantom cancellations are fabricated on the fan-out."""
    slow, fast = SlowProver(timeout=10.0), FastProver(timeout=10.0)
    batch = [_seq(), _seq()]  # identical digests
    result = Dispatcher(
        [slow, fast], race=2, race_stagger=0.01, dedup=True
    ).prove_all(batch)
    assert result.dedup_replayed == 1
    assert result.cancelled_answers == 1  # the representative's only
    duplicate = result.outcomes[1]
    assert duplicate.proved
    assert all(a.verdict is not Verdict.CANCELLED for a in duplicate.answers)
    assert all(a.cached for a in duplicate.answers)


# -- learned ordering in the racing chain -------------------------------------


def test_learned_ordering_reorders_the_race():
    """A table that knows the portfolio-last prover always wins must rank it
    into the first wave, where it settles the sequent immediately."""
    ordering = ProverOrdering()
    seq = _seq()
    provers = [UnknownProver(), UnknownProver2(), InstantProver()]
    from repro.provers.ordering import sequent_features

    bucket = sequent_features(seq)
    ordering.observe_outcome(bucket, "instant", proved=True, time=0.001)
    outcome = _race_prover_chain(
        provers, seq, race=1, ordering=ordering, stagger=0.0
    )
    assert outcome.proved and outcome.prover == "instant"
    # Rank-first instant proved in the first (single-prover) wave: the
    # unknowns were never consulted at all.
    assert [a.prover for a in outcome.answers] == ["instant"]


def test_dispatcher_observes_outcomes_into_ordering():
    ordering = ProverOrdering()
    Dispatcher(
        [UnknownProver(), InstantProver()], race=2, race_stagger=0.0,
        ordering=ordering,
    ).prove_all([_seq()])
    assert ordering.bucket_count() == 1
    names = ["unknown1", "instant"]
    from repro.provers.ordering import sequent_features

    ranked = ordering.rank_bucket(sequent_features(_seq()), names)
    assert ranked[0] == 1  # instant has the only proof record


# -- cross-backend determinism (seeded corpus) --------------------------------

PROVERS = ["syntactic", "smt"]
OPTIONS = {"smt": {"timeout": 2.0}}

#: Formula templates mixing syntactic-provable, smt-provable and unprovable
#: shapes; the seeded corpus below draws from these.
_TEMPLATES = [
    lambda k: sequent([parse(f"p{k}")], parse(f"p{k}")),
    lambda k: sequent([parse(f"a{k} < b{k}"), parse(f"b{k} < c{k}")], parse(f"a{k} < c{k}")),
    lambda k: sequent([parse(f"x{k} = y{k}")], parse(f"y{k} = x{k}")),
    lambda k: sequent([], parse(f"q{k}")),  # unprovable
    lambda k: sequent([parse(f"u{k} : A Un {{}}")], parse(f"u{k} : A")),
]


def _seeded_corpus(seed, count=10):
    rng = random.Random(seed)
    return [rng.choice(_TEMPLATES)(rng.randrange(4)) for _ in range(count)]


def _shape(result):
    return [(o.proved, o.prover) for o in result.outcomes]


def _stat_counts(result):
    return {name: (s.attempted, s.proved) for name, s in result.stats.items()}


def _race_counters(result):
    return (
        result.races_run,
        dict(result.race_wins),
        result.cancelled_answers,
        result.proved,
    )


@pytest.mark.parametrize("seed", [7, 1009])
def test_racing_stats_identical_across_backends(seed):
    """The seeded-corpus determinism property: sequential, thread-parallel
    and process-parallel racing dispatch agree on outcomes, per-prover
    stats and the racing counters (merge order is the sequent order, and
    winners are wave-deterministic, so backends cannot drift)."""
    corpus = _seeded_corpus(seed)
    sequential = Dispatcher(
        make_provers(PROVERS, **OPTIONS), race=2
    ).prove_all(corpus)
    threaded = ParallelDispatcher.from_names(
        PROVERS, workers=2, backend="thread", race=2, **OPTIONS
    ).prove_all(corpus)
    processed = ParallelDispatcher.from_names(
        PROVERS, workers=2, backend="process", race=2, **OPTIONS
    ).prove_all(corpus)
    assert _shape(threaded) == _shape(sequential)
    assert _shape(processed) == _shape(sequential)
    assert _stat_counts(threaded) == _stat_counts(sequential)
    assert _stat_counts(processed) == _stat_counts(sequential)
    assert _race_counters(threaded) == _race_counters(sequential)
    assert _race_counters(processed) == _race_counters(sequential)


@pytest.mark.parametrize("seed", [23])
def test_racing_proves_exactly_what_fixed_order_proves(seed):
    """Racing never changes *what* is proved — only how fast: wave
    fall-through guarantees every prover still gets its turn."""
    corpus = _seeded_corpus(seed, count=12)
    fixed = Dispatcher(make_provers(PROVERS, **OPTIONS)).prove_all(corpus)
    racing = Dispatcher(make_provers(PROVERS, **OPTIONS), race=2).prove_all(corpus)
    assert racing.proved == fixed.proved
    assert [o.proved for o in racing.outcomes] == [o.proved for o in fixed.outcomes]


def test_race_through_verify_keeps_report_counts():
    from repro import suite, verify

    source = suite.source("SizedList")
    kwargs = dict(
        class_name="SizedList", method="size", provers=["smt"],
        prover_options=OPTIONS,
    )
    fixed = verify(source, **kwargs)
    raced = verify(source, race=2, **kwargs)
    assert raced.proved_sequents == fixed.proved_sequents
    assert raced.total_sequents == fixed.total_sequents
