"""Unit tests of the sharded verdict store and the wire encodings."""

import pytest

from repro.form.parser import parse_formula as parse
from repro.provers.base import ProverAnswer, Verdict
from repro.server.store import ShardedVerdictStore
from repro.server.wire import (
    method_report_from_wire,
    method_report_to_wire,
    sequent_from_wire,
    sequent_to_wire,
)
from repro.vcgen.sequent import sequent


def _seqs(count=32):
    return [
        sequent([parse("a < b"), parse("b < c")], parse(f"a < c + {k}"))
        for k in range(count)
    ]


def _proof(detail="t"):
    return ProverAnswer(Verdict.PROVED, "smt", time=0.01, detail=detail)


# -- sharding -----------------------------------------------------------------


def test_shard_of_is_stable_and_in_range():
    store = ShardedVerdictStore(shards=8)
    for seq in _seqs():
        index = store.shard_of(seq)
        assert 0 <= index < 8
        assert store.shard_of(seq) == index  # digest-derived, deterministic


def test_entries_spread_across_shards():
    store = ShardedVerdictStore(shards=4)
    for seq in _seqs(32):
        store.store(seq, "smt", _proof())
    assert len(store) == 32
    populated = sum(1 for shard in store.shard_caches() if len(shard) > 0)
    assert populated >= 2  # 32 digests all hashing to one of 4 shards: ~4^-31


def test_alpha_variant_sequents_share_shard_and_entry():
    """Content addressing: structurally identical sequents (splitter
    numbering aside) land in the same shard and hit the same entry."""
    store = ShardedVerdictStore(shards=16)
    one = sequent([parse("x$1 : A")], parse("x$1 : A"))
    two = sequent([parse("x$9 : A")], parse("x$9 : A"))
    assert one.digest() == two.digest()
    assert store.shard_of(one) == store.shard_of(two)
    store.store(one, "smt", _proof())
    hit = store.lookup(two, "smt")
    assert hit is not None and hit.verdict is Verdict.PROVED
    assert len(store) == 1


def test_rejects_invalid_shard_count():
    with pytest.raises(ValueError):
        ShardedVerdictStore(shards=0)


# -- the SequentCache interface -----------------------------------------------


def test_lookup_store_roundtrip_and_aggregate_stats():
    store = ShardedVerdictStore(shards=4)
    seqs = _seqs(6)
    assert store.lookup(seqs[0], "smt") is None
    for seq in seqs:
        store.store(seq, "smt", _proof("cold"))
    for seq in seqs:
        hit = store.lookup(seq, "smt")
        assert hit is not None
        assert hit.verdict is Verdict.PROVED
        assert hit.detail == "cold"
    stats = store.stats  # merged across shards
    assert stats.stores == 6
    assert stats.hits == 6
    assert stats.misses == 1
    assert stats.hit_rate == pytest.approx(6 / 7)


def test_disk_tier_shared_between_store_instances(tmp_path):
    seqs = _seqs(5)
    writer = ShardedVerdictStore(tmp_path, shards=4)
    for seq in seqs:
        writer.store(seq, "smt", _proof())
    shard_dirs = sorted(p.name for p in tmp_path.iterdir())
    assert all(name.startswith("shard-") for name in shard_dirs)

    reader = ShardedVerdictStore(tmp_path, shards=4)  # fresh memory tiers
    for seq in seqs:
        assert reader.lookup(seq, "smt") is not None
    assert reader.stats.disk_hits == 5


def test_clear_disk_empties_every_shard(tmp_path):
    store = ShardedVerdictStore(tmp_path, shards=4)
    for seq in _seqs(8):
        store.store(seq, "smt", _proof())
    store.clear(disk=True)
    assert len(store) == 0
    assert not any(tmp_path.glob("shard-*/*.json"))
    fresh = ShardedVerdictStore(tmp_path, shards=4)
    assert fresh.lookup(_seqs(1)[0], "smt") is None


def test_options_signature_is_part_of_the_key():
    store = ShardedVerdictStore(shards=4)
    seq = _seqs(1)[0]
    store.store(seq, "smt", _proof(), options_signature="timeout=1")
    assert store.lookup(seq, "smt", "timeout=1") is not None
    assert store.lookup(seq, "smt", "timeout=2") is None
    assert store.lookup(seq, "fol", "timeout=1") is None


# -- wire roundtrips ----------------------------------------------------------


def test_sequent_wire_roundtrip_preserves_digest():
    for seq in _seqs(4):
        back = sequent_from_wire(sequent_to_wire(seq))
        assert back.digest() == seq.digest()
        assert back.origin == seq.origin
        assert back.hints == seq.hints


def test_method_report_wire_roundtrip_is_exact():
    from repro.core.report import MethodReport
    from repro.provers.base import ProverStats

    report = MethodReport(
        class_name="C", method_name="m", total_sequents=3, proved_sequents=2,
        proved_during_splitting=1,
        prover_stats={"smt": ProverStats(attempted=2, proved=2, time=0.5)},
        prover_order=["syntactic", "smt"], unproved_origins=["goal 3"],
        cache_hits=2, cache_misses=1, proved_from_cache=1,
        replayed_sequents=2, dedup_replayed=1, trusted_assumes=0,
    )
    back = method_report_from_wire(method_report_to_wire(report))
    assert back == report
    assert back.format() == report.format()


# -- disk-tier lifecycle (compaction) -----------------------------------------


def test_cache_compact_enforces_entry_cap_oldest_first(tmp_path):
    import os
    import time as _time

    from repro.provers.cache import SequentCache

    cache = SequentCache(cache_dir=tmp_path)
    seqs = _seqs(6)
    for k, seq in enumerate(seqs):
        cache.store(seq, "smt", _proof(f"v{k}"))
        path = cache._disk_path(SequentCache.key(seq, "smt"))
        os.utime(path, (100.0 + k, 100.0 + k))  # deterministic age order
    assert cache.disk_entries() == 6

    evicted = cache.compact(max_entries=2)
    assert evicted == 4
    assert cache.disk_entries() == 2
    # The two *newest* entries survive; a fresh cache (empty memory tier)
    # still reads them, and the evicted ones are plain misses.
    fresh = SequentCache(cache_dir=tmp_path)
    assert fresh.lookup(seqs[5], "smt") is not None
    assert fresh.lookup(seqs[4], "smt") is not None
    assert fresh.lookup(seqs[0], "smt") is None


def test_cache_compact_enforces_age_cap_and_sweeps_stale_tmp(tmp_path):
    import os
    import time as _time

    from repro.provers.cache import SequentCache

    cache = SequentCache(cache_dir=tmp_path)
    old, new = _seqs(2)
    cache.store(old, "smt", _proof())
    path = cache._disk_path(SequentCache.key(old, "smt"))
    ancient = _time.time() - 1000.0
    os.utime(path, (ancient, ancient))
    cache.store(new, "smt", _proof())
    stale_tmp = tmp_path / "deadbeef.123.0.tmp"
    stale_tmp.write_text("{}")
    os.utime(stale_tmp, (ancient, ancient))

    evicted = cache.compact(max_age=500.0)
    assert evicted == 1
    assert cache.disk_entries() == 1
    assert not stale_tmp.exists()
    fresh = SequentCache(cache_dir=tmp_path)
    assert fresh.lookup(new, "smt") is not None
    assert fresh.lookup(old, "smt") is None


def test_memory_only_compact_is_a_noop():
    from repro.provers.cache import SequentCache

    cache = SequentCache()
    cache.store(_seqs(1)[0], "smt", _proof())
    assert cache.compact(max_entries=0) == 0
    assert cache.disk_entries() == 0

    store = ShardedVerdictStore(shards=4)  # memory-only sharded store
    assert store.compact(max_entries=0) == 0
    assert store.compactions == 0


def test_sharded_store_compacts_to_instance_caps(tmp_path):
    store = ShardedVerdictStore(
        tmp_path, shards=1, max_disk_entries=3
    )  # one shard: the per-shard split leaves the cap exact
    for seq in _seqs(10):
        store.store(seq, "smt", _proof())
    assert store.disk_entries() == 10

    evicted = store.compact()  # no arguments: the instance caps apply
    assert evicted == 7
    assert store.disk_entries() == 3
    assert store.compactions == 1
    assert store.evicted_entries == 7

    # An uncapped store compacts only when the call provides caps.
    uncapped = ShardedVerdictStore(tmp_path, shards=1)
    assert uncapped.compact() == 0
    assert uncapped.compact(max_entries=1) == 2
    assert uncapped.disk_entries() == 1


def test_evicted_entries_reprove_instead_of_tearing(tmp_path):
    store = ShardedVerdictStore(tmp_path, shards=2)
    seqs = _seqs(4)
    for seq in seqs:
        store.store(seq, "smt", _proof("original"))
    # max_age=0 evicts everything already written (the entry cap keeps a
    # per-shard floor of one, so the age cap is the evict-it-all lever).
    store.compact(max_age=0.0)
    assert store.disk_entries() == 0

    # A fresh instance (cold memory tiers) misses cleanly and re-stores.
    fresh = ShardedVerdictStore(tmp_path, shards=2)
    assert fresh.lookup(seqs[0], "smt") is None
    fresh.store(seqs[0], "smt", _proof("reproved"))
    hit = fresh.lookup(seqs[0], "smt")
    assert hit is not None and hit.detail == "reproved"
