"""Lane-concurrency tests of the multi-lane batching service.

The contract pinned here:

* batches for *different* prover configurations dispatch concurrently —
  a fast config's request returns while a slow config's batch is still in
  flight, and ``peak_lanes_busy`` records the overlap;
* the in-flight digest registry preserves single-flight per (digest,
  configuration) *across* lanes: a second lane assembling a batch over
  digests another lane is proving defers them and replays their verdicts
  from the store, keeping ``live_reproofs == 0``;
* a request-level deadline cuts a dispatch off *mid-flight* (the chains
  enforce the threaded ``Deadline`` cooperatively) and post-deadline
  outcomes come back ``budget_exhausted`` — the request never waits for the
  slow prover to finish on its own schedule.

All tests drive :class:`VerifyService` directly under asyncio with a
registered in-process test prover, so they run on the thread backend (the
process farm cannot see a prover registered only in the test process).
"""

import asyncio
import time

import pytest

from repro.form.parser import parse_formula as parse
from repro.provers.base import Deadline, Prover, ProverAnswer, Verdict, registry
from repro.provers.dispatcher import make_provers  # ensures default registration
from repro.server import ShardedVerdictStore, VerifyService
from repro.vcgen.sequent import sequent


class SleepyProver(Prover):
    """Proves everything after ``delay`` seconds, polling its deadline —
    a stand-in for a slow decision procedure that honors cooperative
    cancellation (``DeadlineExpired`` from checkpoint → TIMEOUT answer)."""

    name = "sleepy"

    def __init__(self, timeout: float = 30.0, delay: float = 0.3) -> None:
        super().__init__(timeout=timeout)
        self.delay = delay

    def attempt(self, sequent, deadline=None):
        end = time.monotonic() + self.delay
        while time.monotonic() < end:
            if deadline is not None:
                deadline.checkpoint(detail="sleeping")
            time.sleep(0.01)
        return ProverAnswer(Verdict.PROVED, self.name, detail="slept it off")


@pytest.fixture(autouse=True)
def _register_sleepy():
    make_provers(["syntactic"])  # populate the default registry first
    registry.register("sleepy", SleepyProver)
    yield


def _service(**kwargs):
    kwargs.setdefault("window", 0.01)
    kwargs.setdefault("lanes", 2)
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("backend", "thread")
    return VerifyService(ShardedVerdictStore(), **kwargs)


def _syntactic_seq(k=0):
    return sequent([parse(f"P (x + {k})")], parse(f"P (x + {k})"))


async def _wait_for(predicate, timeout=5.0):
    deadline = Deadline.after(timeout)
    while not predicate():
        assert not deadline.expired(), "condition never became true"
        await asyncio.sleep(0.005)


# -- lane overlap --------------------------------------------------------------


def test_distinct_configs_dispatch_concurrently():
    """A fast config's batch must not queue behind a slow config's: the
    syntactic request returns while the sleepy dispatch is still in flight
    (the pre-lane daemon serialized them: ~0.6s for the fast client)."""

    async def run():
        service = await _service().start()
        try:
            slow = asyncio.ensure_future(
                service.prove(
                    [_syntactic_seq(0)],
                    provers=["sleepy"],
                    prover_options={"sleepy": {"delay": 0.6}},
                )
            )
            # Wait until the slow lane has *claimed* its digest (not merely
            # launched), so the fast request below provably overlaps it.
            await _wait_for(lambda: service._inflight)
            fast = await service.prove([_syntactic_seq(1)], provers=["syntactic"])
            assert fast.proved == 1
            assert not slow.done(), "fast lane should finish first"
            assert service.lanes_busy >= 1
            result = await slow
            assert result.proved == 1
        finally:
            await service.stop()
        assert service.stats.peak_lanes_busy == 2
        assert service.stats.live_reproofs == 0
        assert service.stats.batches == 2

    asyncio.run(run())


def test_inflight_registry_blocks_cross_lane_reproofs():
    """Two lanes of the *same* configuration over the same digest: the
    second lane must defer to the first's in-flight proof and replay the
    verdict from the store — never prove it live a second time."""

    async def run():
        service = await _service().start()
        options = {"sleepy": {"delay": 0.4}}
        try:
            first = asyncio.ensure_future(
                service.prove(
                    [_syntactic_seq(0)], provers=["sleepy"], prover_options=options
                )
            )
            await _wait_for(lambda: service._inflight)
            second = asyncio.ensure_future(
                service.prove(
                    [_syntactic_seq(0)], provers=["sleepy"], prover_options=options
                )
            )
            # The second batch gets its own lane while the first is in flight.
            await _wait_for(lambda: service.stats.peak_lanes_busy >= 2)
            a, b = await asyncio.gather(first, second)
        finally:
            await service.stop()
        assert a.proved == 1 and b.proved == 1
        assert a.replayed + b.replayed == 1  # the deferred copy replays
        assert service.stats.live_proved == 1
        assert service.stats.live_reproofs == 0
        assert service.stats.deferred_sequents >= 1
        assert service.stats.peak_lanes_busy == 2

    asyncio.run(run())


def test_all_lanes_busy_queues_the_next_batch():
    """With every lane occupied, a new config's batch waits — and dispatches
    as soon as a lane frees up (the scheduler's wakeup on lane completion)."""

    async def run():
        service = await _service(lanes=1).start()
        try:
            slow = asyncio.ensure_future(
                service.prove(
                    [_syntactic_seq(0)],
                    provers=["sleepy"],
                    prover_options={"sleepy": {"delay": 0.3}},
                )
            )
            await _wait_for(lambda: service._inflight)
            fast = await service.prove([_syntactic_seq(1)], provers=["syntactic"])
            assert fast.proved == 1
            assert slow.done(), "one lane: the fast batch had to wait its turn"
            await slow
        finally:
            await service.stop()
        assert service.stats.peak_lanes_busy == 1

    asyncio.run(run())


# -- deadlines mid-dispatch ----------------------------------------------------


def test_deadline_expires_mid_dispatch():
    """Regression (the deadline bugfix): a request whose budget runs out
    *during* dispatch must come back ``budget_exhausted`` promptly — the old
    daemon only checked deadlines before the batch started, so this request
    used to block for the sleepy prover's full 10 seconds."""

    async def run():
        service = await _service(lanes=1).start()
        loop = asyncio.get_running_loop()
        try:
            started = loop.time()
            result = await service.prove(
                [_syntactic_seq(0)],
                provers=["sleepy"],
                prover_options={"sleepy": {"delay": 10.0}},
                deadline=Deadline.after(0.3),
            )
            elapsed = loop.time() - started
        finally:
            await service.stop()
        assert elapsed < 3.0, f"deadline ignored mid-dispatch ({elapsed:.1f}s)"
        assert result.proved == 0
        (outcome,) = result.outcomes
        assert outcome.budget_exhausted
        # The request made it into dispatch — it did not expire while queued.
        assert service.stats.requests_expired == 0
        assert service.stats.batches == 1

    asyncio.run(run())


def test_deadlined_request_never_clips_cobatched_work():
    """A short-budget request sharing a window with an unbudgeted one must
    not drag the latter under its deadline: deadlined requests dispatch
    solo, the plain batch runs to completion."""

    async def run():
        service = await _service(lanes=1, window=0.05).start()
        options = {"sleepy": {"delay": 0.4}}
        try:
            budgeted = asyncio.ensure_future(
                service.prove(
                    [_syntactic_seq(0)],
                    provers=["sleepy"],
                    prover_options=options,
                    deadline=Deadline.after(0.1),
                )
            )
            plain = asyncio.ensure_future(
                service.prove(
                    [_syntactic_seq(1)], provers=["sleepy"], prover_options=options
                )
            )
            a, b = await asyncio.gather(budgeted, plain)
        finally:
            await service.stop()
        assert a.proved == 0 and a.outcomes[0].budget_exhausted
        assert b.proved == 1, "the unbudgeted co-batched request must complete"
        assert service.stats.live_reproofs == 0

    asyncio.run(run())
