"""Integration tests of the verify daemon (repro.server).

The daemon's contract, pinned here:

* concurrent clients with overlapping batches share one prover farm — each
  distinct digest is proved live at most once (``live_reproofs == 0``);
* warm traffic is answered entirely by replay, whatever the verdict
  (cached UNKNOWNs count — the ``from_cache`` accounting fix);
* server-backed ``verify_method`` / ``verify_class`` runs produce
  byte-identical ``format()`` reports to local warm-cache runs;
* per-request budgets expire queued work without consuming prover time;
* the sharded store persists verdicts across daemon restarts;
* shutdown drains gracefully and the port stops answering.
"""

import threading

import pytest

from repro import suite, verify, verify_class
from repro.form.parser import parse_formula as parse
from repro.provers.cache import SequentCache
from repro.server import VerifyClient, VerifyServer, VerifyServiceError
from repro.vcgen.sequent import sequent

PROVERS = ["syntactic", "smt"]
OPTIONS = {"smt": {"timeout": 2.0}}


def _arith(k):
    """A distinct-digest LIA sequent the smt engine proves quickly."""
    return sequent([parse("a < b"), parse("b < c")], parse(f"a < c + {k}"))


def _corpus(count=8):
    return [_arith(k) for k in range(count)]


@pytest.fixture
def server(tmp_path):
    srv = VerifyServer(
        port=0, store_dir=str(tmp_path / "store"), shards=4, window=0.02
    ).start()
    yield srv
    srv.stop()


@pytest.fixture
def client(server):
    with VerifyClient(port=server.port) as c:
        yield c


def _service_stats(client):
    return client.stats()["service"]


# -- protocol basics ----------------------------------------------------------


def test_ping_and_stats(client):
    assert client.ping()
    stats = client.stats()
    assert stats["store"]["shards"] == 4
    assert set(stats["service"]) >= {
        "requests", "batches", "live_proved", "replayed", "live_reproofs",
    }


def test_error_answer_keeps_the_connection_usable(client):
    with pytest.raises(VerifyServiceError):
        client.call("no-such-op")
    with pytest.raises(VerifyServiceError):
        client.call("verify_method")  # missing source
    assert client.ping()


# -- raw sequent batches ------------------------------------------------------


def test_prove_sequents_cold_then_warm(client):
    batch = _corpus(4) + [_arith(0)]  # one in-batch duplicate
    cold = client.prove_sequents(batch, provers=PROVERS, prover_options=OPTIONS)
    assert cold["total"] == 5
    assert cold["proved"] == 5
    assert cold["dedup_replayed"] == 1

    warm = client.prove_sequents(batch, provers=PROVERS, prover_options=OPTIONS)
    assert warm["proved"] == 5
    assert warm["replayed"] == 5  # every verdict replayed, none proved live
    stats = _service_stats(client)
    assert stats["live_proved"] == 4
    assert stats["live_reproofs"] == 0
    assert stats["distinct_live_digests"] == 4


def test_cached_nonproof_verdict_is_replayed_traffic(client):
    """A cached UNKNOWN replays as warm traffic (the from_cache fix):
    ``replayed`` counts it even though ``proved_from_cache`` cannot."""
    unprovable = [sequent([], parse("q"))]
    cold = client.prove_sequents(unprovable, provers=PROVERS, prover_options=OPTIONS)
    assert cold["proved"] == 0
    assert cold["replayed"] == 0

    warm = client.prove_sequents(unprovable, provers=PROVERS, prover_options=OPTIONS)
    assert warm["proved"] == 0
    assert warm["replayed"] == 1
    assert warm["proved_from_cache"] == 0
    (outcome,) = warm["outcomes"]
    assert outcome["from_cache"] and not outcome["proved"]
    assert all(answer["cached"] for answer in outcome["answers"])


def test_cross_client_dedup_proves_each_digest_once(server):
    """Six concurrent clients submit overlapping slices of one corpus: the
    daemon merges their windows, the dedup pre-pass + store guarantee every
    distinct digest is proved live exactly once across all of them."""
    corpus = _corpus(8)
    responses = {}
    errors = []

    def submit(index):
        batch = [corpus[j % 8] for j in range(index, index + 5)]
        try:
            with VerifyClient(port=server.port) as c:
                responses[index] = c.prove_sequents(
                    batch, provers=PROVERS, prover_options=OPTIONS
                )
        except Exception as exc:  # noqa: BLE001 - surfaced by the assert below
            errors.append(repr(exc))

    threads = [threading.Thread(target=submit, args=(i,)) for i in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert not errors
    assert len(responses) == 6
    for response in responses.values():
        assert response["proved"] == response["total"] == 5

    with VerifyClient(port=server.port) as c:
        stats = _service_stats(c)
    assert stats["live_proved"] == 8
    assert stats["distinct_live_digests"] == 8
    assert stats["live_reproofs"] == 0
    # 6 x 5 sequents dispatched, 8 proved live: the rest were replays.
    assert stats["replayed"] == 30 - 8


def test_request_budget_expires_queued_work(client):
    """A request whose budget lapses while queued is answered
    ``budget_exhausted`` without running any prover."""
    response = client.prove_sequents(
        [_arith(100), _arith(101)],
        provers=PROVERS,
        prover_options=OPTIONS,
        budget=0.0,
    )
    assert response["proved"] == 0
    assert all(o["budget_exhausted"] for o in response["outcomes"])
    assert all(not o["answers"] for o in response["outcomes"])
    stats = _service_stats(client)
    assert stats["requests_expired"] == 1
    assert stats["live_proved"] == 0


def _pigeonhole(n=8, bound=None):
    """An smt-grinding sequent: n pairwise-distinct integers in [0, n-2]."""
    bound = (n - 2) if bound is None else bound
    assumptions = []
    for i in range(n):
        assumptions += [parse(f"0 <= y{i}"), parse(f"y{i} <= {bound}")]
    for i in range(n):
        for j in range(i + 1, n):
            assumptions.append(parse(f"y{i} < y{j} | y{j} < y{i}"))
    return sequent(assumptions, parse(f"y{n-1} < y0"))


def test_cobatched_clients_are_billed_their_own_latency(tmp_path):
    """Two clients sharing one batch window: the cheap client's slice must
    report *its own* answer-time sum, not the merged batch's wall (which the
    slow client's grinding sequent dominates).  Stamping the batch wall on
    every slice used to bill each co-batched client for the whole window."""
    slow_options = {"smt": {"timeout": 1.2}}
    server = VerifyServer(
        port=0, store_dir=str(tmp_path / "store"), shards=4, window=0.5
    ).start()
    try:
        responses = {}
        errors = []

        def submit(tag, batch):
            try:
                with VerifyClient(port=server.port) as c:
                    responses[tag] = c.prove_sequents(
                        batch, provers=PROVERS, prover_options=slow_options
                    )
            except Exception as exc:  # noqa: BLE001
                errors.append(repr(exc))

        threads = [
            threading.Thread(target=submit, args=("slow", [_pigeonhole()])),
            threading.Thread(
                target=submit,
                args=("cheap", [sequent([parse(f"p{k}")], parse(f"p{k}")) for k in range(3)]),
            ),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        with VerifyClient(port=server.port) as c:
            stats = _service_stats(c)
    finally:
        server.stop()

    # Both requests landed in one merged batch (the 0.5s window caught them).
    assert stats["batches"] == 1
    cheap, slow = responses["cheap"], responses["slow"]
    assert cheap["proved"] == 3
    # The batch wall is dominated by the pigeonhole grind (~1.2s timeout)
    # and is reported identically to every slice of the batch...
    assert cheap["batch_wall_time"] >= 1.0
    assert cheap["batch_wall_time"] == pytest.approx(slow["batch_wall_time"])
    # ...but the cheap client's own latency is its three syntactic answers,
    # nowhere near the batch wall it used to be billed for.
    assert cheap["wall_time"] < 0.5
    assert cheap["total_time"] == pytest.approx(cheap["wall_time"])
    assert slow["wall_time"] >= 1.0


def test_daemon_racing_mode_matches_fixed_order(tmp_path):
    """A race=2 daemon proves exactly what a fixed-order daemon proves and
    leaves its learned ordering table beside the verdict store."""
    import os

    from repro.provers.ordering import DEFAULT_FILENAME

    batch = _corpus(4)
    fixed = VerifyServer(
        port=0, store_dir=str(tmp_path / "fixed"), shards=4, window=0.01
    ).start()
    try:
        with VerifyClient(port=fixed.port) as c:
            baseline = c.prove_sequents(batch, provers=PROVERS, prover_options=OPTIONS)
    finally:
        fixed.stop()

    racing_dir = str(tmp_path / "racing")
    racing = VerifyServer(
        port=0, store_dir=racing_dir, shards=4, window=0.01, race=2
    ).start()
    try:
        with VerifyClient(port=racing.port) as c:
            raced = c.prove_sequents(batch, provers=PROVERS, prover_options=OPTIONS)
    finally:
        racing.stop()

    assert raced["proved"] == baseline["proved"] == 4
    assert [o["proved"] for o in raced["outcomes"]] == [
        o["proved"] for o in baseline["outcomes"]
    ]
    # No CANCELLED verdict ever crosses the wire into a stored outcome's
    # deciding answer, and the ordering learned beside the store.
    assert os.path.exists(os.path.join(racing_dir, DEFAULT_FILENAME))


# -- server-backed verify: byte-identical reports -----------------------------


def test_verify_method_report_byte_identical_to_local_warm_run(client):
    source = suite.source("SizedList")
    kwargs = dict(
        class_name="SizedList", method="size", provers=["smt"],
        prover_options=OPTIONS,
    )
    cache = SequentCache()
    verify(source, cache=cache, **kwargs)
    local_warm = verify(source, cache=cache, **kwargs)

    client.verify_method(source, **kwargs)
    server_warm = client.verify_method(source, **kwargs)

    assert server_warm.succeeded
    assert server_warm.format() == local_warm.format()
    assert server_warm.replayed_sequents == local_warm.replayed_sequents


def test_verify_class_concurrent_clients_match_local_warm_run(server):
    source = suite.source("SizedList")
    kwargs = dict(
        class_name="SizedList", methods=["size", "isEmpty"],
        provers=["smt"], prover_options=OPTIONS,
    )
    reports = {}
    errors = []

    def run_class(tag):
        try:
            with VerifyClient(port=server.port) as c:
                reports[tag] = c.verify_class(source, **kwargs)
        except Exception as exc:  # noqa: BLE001
            errors.append(repr(exc))

    threads = [threading.Thread(target=run_class, args=(i,)) for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors

    with VerifyClient(port=server.port) as c:
        warm_server = c.verify_class(source, **kwargs)
        stats = _service_stats(c)
    assert stats["live_reproofs"] == 0

    cache = SequentCache()
    verify_class(source, cache=cache, **kwargs)
    warm_local = verify_class(source, cache=cache, **kwargs)

    # isEmpty does not fully discharge with smt alone; what matters here is
    # that the server-backed warm run agrees with the local one byte for byte.
    assert warm_server.succeeded == warm_local.succeeded
    assert warm_server.prover_order == warm_local.prover_order
    assert len(warm_server.methods) == len(warm_local.methods) == 2
    for ours, theirs in zip(warm_server.methods, warm_local.methods):
        assert ours.format() == theirs.format()


# -- store persistence and lifecycle ------------------------------------------


def test_store_persists_across_daemon_restarts(tmp_path):
    store_dir = str(tmp_path / "store")
    batch = _corpus(4)

    first = VerifyServer(port=0, store_dir=store_dir, shards=4, window=0.01).start()
    try:
        with VerifyClient(port=first.port) as c:
            cold = c.prove_sequents(batch, provers=PROVERS, prover_options=OPTIONS)
            assert cold["proved"] == 4
    finally:
        first.stop()

    second = VerifyServer(port=0, store_dir=store_dir, shards=4, window=0.01).start()
    try:
        with VerifyClient(port=second.port) as c:
            warm = c.prove_sequents(batch, provers=PROVERS, prover_options=OPTIONS)
            assert warm["proved"] == 4
            assert warm["replayed"] == 4
            stats = c.stats()
            assert stats["service"]["live_proved"] == 0
            assert stats["store"]["disk_hits"] > 0
    finally:
        second.stop()


def test_shutdown_op_drains_and_stops(tmp_path):
    server = VerifyServer(port=0, window=0.01).start()
    with VerifyClient(port=server.port) as c:
        assert c.prove_sequents(_corpus(2), provers=PROVERS, prover_options=OPTIONS)[
            "proved"
        ] == 2
        c.shutdown(drain=True)
    server.stop()  # joins the (already exiting) server thread
    probe = VerifyClient(port=server.port, connect_retries=2)
    with pytest.raises(VerifyServiceError):
        probe.ping()


def test_stop_without_drain_abandons_nothing_inflight(tmp_path):
    server = VerifyServer(port=0, window=0.01).start()
    with VerifyClient(port=server.port) as c:
        assert c.ping()
    server.stop(drain=False)
    assert server._thread is None


# -- protocol framing ---------------------------------------------------------


def test_large_request_over_64k_is_served(tmp_path):
    """Regression (the framing bugfix): a request frame over asyncio's stock
    64 KiB StreamReader limit must be served normally — the old server
    started without ``limit=`` and dropped the connection on the first big
    ``prove_sequents`` batch, leaving the client blocked on a reply."""
    server = VerifyServer(port=0, window=0.01).start()
    try:
        batch = [_arith(0)] * 3000  # ~240 KiB on the wire
        with VerifyClient(port=server.port) as c:
            response = c.prove_sequents(batch, provers=PROVERS, prover_options=OPTIONS)
        assert response["total"] == 3000
        assert response["proved"] == 3000
        assert response["dedup_replayed"] == 2999
    finally:
        server.stop()


def test_oversized_frame_gets_structured_error_not_a_dropped_connection():
    """A frame beyond ``max_request_bytes`` is drained and answered with a
    structured error, and the *same* connection keeps working."""
    import json as _json
    import socket as _socket

    server = VerifyServer(port=0, window=0.01, max_request_bytes=4096).start()
    try:
        with _socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
            f = sock.makefile("rwb")
            # An oversized (but otherwise valid) request frame...
            huge = _json.dumps({"op": "ping", "pad": "x" * 20000}).encode() + b"\n"
            f.write(huge)
            f.flush()
            answer = _json.loads(f.readline())
            assert answer["ok"] is False
            assert "max_request_bytes" in answer["error"]
            # ... does not poison the connection for the next request.
            f.write(_json.dumps({"op": "ping"}).encode() + b"\n")
            f.flush()
            answer = _json.loads(f.readline())
            assert answer == {"ok": True, "pong": True}
        stats_client = VerifyClient(port=server.port)
        stats = stats_client.stats()
        assert stats["max_request_bytes"] == 4096
        assert stats["requests_failed"] >= 1
        stats_client.close()
    finally:
        server.stop()


# -- two daemon processes on one store root -----------------------------------


def test_two_daemon_processes_share_one_store_root(tmp_path):
    """Two real daemon *processes* (``python -m repro.server``) on one
    ``--store-dir`` root: the second daemon answers the first's corpus
    entirely from the shared disk tier, with both daemons alive and
    serving concurrently.  Also pins the CLI bugfix: ``--port 0`` prints
    the actually-bound port (parsed from the banner here), not ``:0``."""
    import os as _os
    import re as _re
    import subprocess as _subprocess
    import sys as _sys

    import repro

    store_dir = str(tmp_path / "shared-store")
    env = dict(_os.environ)
    env["PYTHONPATH"] = str(_os.path.dirname(_os.path.dirname(repro.__file__)))

    def spawn():
        proc = _subprocess.Popen(
            [
                _sys.executable, "-m", "repro.server", "--port", "0",
                "--store-dir", store_dir, "--shards", "4", "--window", "0.01",
                "--lanes", "2", "--workers", "1",
            ],
            stdout=_subprocess.PIPE, stderr=_subprocess.STDOUT, text=True, env=env,
        )
        banner = proc.stdout.readline()
        match = _re.search(r"verify daemon on 127\.0\.0\.1:(\d+)", banner)
        assert match, f"unparseable daemon banner: {banner!r}"
        port = int(match.group(1))
        assert port != 0, "--port 0 must print the bound port, not the requested one"
        return proc, port

    batch = _corpus(6)
    first_proc, first_port = spawn()
    second_proc, second_port = spawn()
    try:
        with VerifyClient(port=first_port) as a:
            cold = a.prove_sequents(batch, provers=PROVERS, prover_options=OPTIONS)
            assert cold["proved"] == 6
        with VerifyClient(port=second_port) as b:
            warm = b.prove_sequents(batch, provers=PROVERS, prover_options=OPTIONS)
            assert warm["proved"] == 6
            assert warm["replayed"] == 6  # all from the shared disk tier
            stats = b.stats()
            assert stats["service"]["live_proved"] == 0
            assert stats["store"]["disk_hits"] > 0
            # Cross-process compaction is safe while the other daemon serves.
            compacted = b.compact(max_entries=2)
            assert compacted["disk_entries"] <= 6
        with VerifyClient(port=first_port) as a:
            again = a.prove_sequents(batch, provers=PROVERS, prover_options=OPTIONS)
            assert again["proved"] == 6  # evicted entries re-prove, never tear
    finally:
        for proc, port in ((first_proc, first_port), (second_proc, second_port)):
            try:
                VerifyClient(port=port, connect_retries=2).shutdown()
            except VerifyServiceError:
                pass
            proc.wait(timeout=20)
