"""End-to-end verification through the public API (frontend -> VCs -> provers).

These tests run the whole pipeline on small programs with short prover
timeouts.  They check both directions:

* correct programs verify (completeness on easy instances), and
* broken programs or broken specifications are *never* reported as verified
  (soundness) — the non-negotiable property of the system.
"""

import pytest

from repro import suite, verify, verify_class
from repro.core.report import ClassReport, MethodReport, format_table

FAST = {"smt": {"timeout": 2.5}, "fol": {"timeout": 1.0}}

COUNTER = """
class Counter {
    private static int count;
    /*: public static ghost specvar total :: "int" = "0";
        invariant TotalInv: "total = count";
    */
    public static void increment()
    /*: requires "True" modifies total ensures "total = old total + 1" */
    {
        count = count + 1;
        //: total := "total + 1";
    }
    public static int get()
    /*: requires "True" ensures "result = total" */
    {
        return count;
    }
}
"""

BROKEN_COUNTER = COUNTER.replace("count = count + 1;", "count = count + 2;")
BROKEN_SPEC = COUNTER.replace('ensures "result = total"', 'ensures "result = total + 1"')

GLOBAL_SET = """
class Registry {
    private static Object last;
    /*: public static ghost specvar seen :: "objset" = "{}"; */
    public static void record(Object x)
    /*: requires "x ~= null" modifies seen ensures "seen = old seen Un {x}" */
    {
        last = x;
        //: seen := "seen Un {x}";
    }
    public static void forget()
    /*: requires "True" modifies seen ensures "seen = {}" */
    {
        last = null;
        //: seen := "{}";
    }
}
"""


def test_counter_increment_verifies():
    report = verify(COUNTER, method="increment", class_name="Counter",
                    provers=["smt"], prover_options=FAST)
    assert report.succeeded, report.format()


def test_counter_get_verifies():
    report = verify(COUNTER, method="get", class_name="Counter",
                    provers=["smt"], prover_options=FAST)
    assert report.succeeded, report.format()


def test_broken_body_is_rejected():
    report = verify(BROKEN_COUNTER, method="increment", class_name="Counter",
                    provers=["smt", "bapa", "mona"], prover_options=FAST)
    assert not report.succeeded


def test_broken_specification_is_rejected():
    report = verify(BROKEN_SPEC, method="get", class_name="Counter",
                    provers=["smt", "bapa", "mona"], prover_options=FAST)
    assert not report.succeeded


def test_ghost_set_updates_verify():
    report = verify(GLOBAL_SET, method="record", class_name="Registry",
                    provers=["smt", "mona"], prover_options=FAST)
    assert report.succeeded, report.format()


def test_ghost_set_clear_verifies():
    report = verify(GLOBAL_SET, method="forget", class_name="Registry",
                    provers=["smt", "mona"], prover_options=FAST)
    assert report.succeeded, report.format()


def test_frame_violation_detected():
    # `forget` claims it modifies nothing: the frame condition seen = old seen
    # must then fail (the body sets seen := {}).
    broken = GLOBAL_SET.replace(
        '/*: requires "True" modifies seen ensures "seen = {}" */',
        '/*: requires "True" ensures "True" */',
    )
    report = verify(broken, method="forget", class_name="Registry",
                    provers=["smt", "mona"], prover_options=FAST)
    assert not report.succeeded


def test_missing_null_check_detected():
    source = """
    public /*: claimedby Box */ class Cell { public Object value; }
    class Box {
        private static Cell cell;
        /*: public static ghost specvar stored :: "obj" = "null"; */
        public static Object read()
        /*: requires "True" ensures "True" */
        {
            return cell.value;
        }
    }
    """
    report = verify(source, method="read", class_name="Box",
                    provers=["smt", "fol"], prover_options=FAST)
    # cell may be null: the null-dereference obligation must remain open.
    assert not report.succeeded
    assert any("null-check" in origin for origin in report.unproved_origins)


def test_report_format_mirrors_figure7():
    report = verify(COUNTER, method="increment", class_name="Counter",
                    provers=["z3"], prover_options=FAST)
    text = report.format()
    assert "sequents" in text
    assert "Verification SUCCEEDED" in text or "FAILED" in text
    assert f":Counter.increment]" in text


def test_verify_class_aggregates_methods():
    report = verify_class(COUNTER, class_name="Counter", provers=["smt"],
                          prover_options=FAST)
    assert isinstance(report, ClassReport)
    assert {m.method_name for m in report.methods} == {"increment", "get"}
    assert report.total_sequents == sum(m.total_sequents for m in report.methods)
    row = report.row(["smt"])
    assert row["Data Structure"] == "Counter"


def test_format_table_produces_figure15_shape():
    report = verify_class(COUNTER, class_name="Counter", provers=["smt"], prover_options=FAST)
    table = format_table([report], ["smt"])
    assert "Data Structure" in table.splitlines()[0]
    assert "Counter" in table


def test_paper_prover_aliases_accepted_end_to_end():
    report = verify(COUNTER, method="get", class_name="Counter",
                    provers=["spass", "z3", "isabelle"],
                    prover_options={"fol": {"timeout": 1.0}, "smt": {"timeout": 2.0}})
    assert report.succeeded


# -- selected easy suite methods run end-to-end (kept small for test-suite speed) ----------


@pytest.mark.parametrize(
    "structure, method, provers",
    [
        ("SinglyLinkedList", "clear", ["smt", "mona"]),
        ("SizedList", "size", ["smt", "bapa"]),
        ("ArrayList", "size", ["smt"]),
    ],
)
def test_easy_suite_methods_verify(structure, method, provers):
    report = verify(
        suite.source(structure),
        class_name=structure,
        method=method,
        provers=provers,
        prover_options=FAST,
    )
    assert report.succeeded, report.format()


@pytest.mark.parametrize(
    "structure, method",
    [
        ("AssocList", "lookup"),
        ("BinarySearchTree", "contains"),
        ("BinarySearchTree", "insert"),
        ("BinarySearchTree", "clear"),
        ("AssocList", "clear"),
    ],
)
def test_strengthened_traversal_invariants_fully_discharge(structure, method):
    """The ReachPairs/ReachKeys backbone invariants (plus the union- and
    fieldWrite-backbone reachability axioms) let the traversal obligations of
    AssocList.lookup and BinarySearchTree.contains discharge completely —
    the previously weak loop invariants left their preservation obligations
    open.  (AssocList.put also fully verifies, but its written-backbone
    proofs take ~20s; the unit tests in tests/fol cover that machinery.)"""
    report = verify(
        suite.source(structure),
        class_name=structure,
        method=method,
        provers=["smt", "fol", "mona", "bapa"],
        prover_options={"smt": {"timeout": 2.0}, "fol": {"timeout": 10.0}},
        sequent_budget=20.0,
    )
    assert report.succeeded, report.format()


@pytest.mark.parametrize(
    "structure, method",
    [
        ("SinglyLinkedList", "add"),
        ("SinglyLinkedList", "isEmpty"),
        ("SizedList", "addNew"),
        ("CursorList", "done"),
    ],
)
def test_mutating_suite_methods_discharge_most_obligations(structure, method):
    report = verify(
        suite.source(structure),
        class_name=structure,
        method=method,
        provers=["smt", "mona", "bapa"],
        prover_options=FAST,
    )
    total = report.total_sequents + report.proved_during_splitting
    discharged = report.proved_sequents + report.proved_during_splitting
    assert total > 0
    # The automated portfolio (including the splitting-time checker, which the
    # paper's Figure 15 also counts) must discharge the majority of the
    # obligations; a small residue may be left for interactive proof
    # (see EXPERIMENTS.md).
    assert discharged >= total * 0.6, report.format()
