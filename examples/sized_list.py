#!/usr/bin/env python3
"""The sized-list example of paper Section 2.2 (Figures 6 and 7).

The ``addNew`` method of the sized list needs three different kinds of
reasoning at once: first-order reasoning about the heap update, monadic set
reasoning about the ghost ``content`` set, and BAPA reasoning for the
``size = card content`` invariant.  This script verifies the method with the
same prover order as the paper's command line and prints the Figure 7 style
report showing how many sequents each prover discharged.
"""

from repro import suite, verify


def main() -> None:
    source = suite.source("SizedList")
    report = verify(
        source,
        class_name="SizedList",
        method="addNew",
        # Figure 7:  jahob List.java -method List.add -usedp spass mona bapa
        provers=["spass", "mona", "bapa", "z3"],
        prover_options={"fol": {"timeout": 2.0}, "smt": {"timeout": 4.0}},
    )
    print(report.format())

    print()
    print("Per-prover breakdown (the Figure 7 table):")
    for prover in report.prover_order:
        stats = report.prover_stats.get(prover)
        if stats is None:
            continue
        print(f"  {prover:12s} attempted {stats.attempted:3d}  proved {stats.proved:3d}  {stats.time:6.1f}s")


if __name__ == "__main__":
    main()
