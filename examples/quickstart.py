#!/usr/bin/env python3
"""Quickstart: verify a bundled data structure and print the Figure 7 report.

This mirrors the paper's command line

    jahob SinglyLinkedList.java -method SinglyLinkedList.add -usedp z3 mona bapa

using the reproduction's Python API.
"""

from repro import suite, verify


def main() -> None:
    source = suite.source("SinglyLinkedList")

    # Verify one method, as on the paper's command line (Figure 7).
    report = verify(
        source,
        class_name="SinglyLinkedList",
        method="isEmpty",
        provers=["z3", "mona", "bapa"],  # paper tool names are accepted as aliases
        prover_options={"smt": {"timeout": 3.0}},
    )
    print(report.format())
    print()

    # A method that mutates the structure exercises more of the portfolio.
    report = verify(
        source,
        class_name="SinglyLinkedList",
        method="clear",
        provers=["smt", "mona", "bapa"],
        prover_options={"smt": {"timeout": 3.0}},
    )
    print(report.format())


if __name__ == "__main__":
    main()
