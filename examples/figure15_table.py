#!/usr/bin/env python3
"""Regenerate the Figure 15 table: per-data-structure sequent counts and times.

For every data structure of the bundled suite (paper Section 7), every
contracted method is verified with the structure's prover order, and one row
of the table is printed: how many sequents each prover proved, the total
verification time, and whether every obligation was discharged.

The whole table shares one on-disk sequent cache (``--cache-dir``) and the
dedup pre-pass: obligations that recur across methods and structures —
invariant re-establishment, frame conjuncts, recurring null checks — are
proved once and replayed everywhere else, so a full table run reports fewer
live proofs than sequents dispatched, and a *re*-run replays almost
everything.  Per-sequent budgets (``--budget``) are enforced inside every
prover (see the Deadline contract in ``repro.provers.base``), so a stuck
decision procedure is cut off instead of stalling its row.

This is the full reproduction run and takes several minutes; pass a subset
of structure names to restrict it, e.g.::

    python examples/figure15_table.py SinglyLinkedList SizedList
    python examples/figure15_table.py --workers 4 --budget 10
"""

import argparse

from repro import suite
from repro.core.report import format_table
from repro.provers.cache import SequentCache


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("names", nargs="*", help="suite structures to verify (default: all)")
    parser.add_argument(
        "--cache-dir", default=".figure15-cache",
        help="on-disk sequent cache shared by the whole table (default: %(default)s)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the shared disk cache"
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="worker pool size per method (default: 1)"
    )
    parser.add_argument(
        "--budget", type=float, default=None,
        help="enforced per-sequent time budget in seconds (default: none)",
    )
    args = parser.parse_args()

    names = args.names or list(suite.FIGURE15_NAMES)
    provers = ["smt", "fol", "mona", "bapa"]
    cache = None if args.no_cache else SequentCache(cache_dir=args.cache_dir)
    reports = []
    for name in names:
        print(f"verifying {name} ...", flush=True)
        report = suite.verify_structure(
            name,
            provers=provers,
            prover_options={"smt": {"timeout": 3.0}, "fol": {"timeout": 1.5}},
            cache=cache,
            dedup=True,
            workers=args.workers,
            sequent_budget=args.budget,
        )
        reports.append(report)
        row = report.row(provers)
        print("  ", {k: v for k, v in row.items() if v})
    print()
    print(format_table(reports, provers))

    dispatched = sum(r.total_sequents for r in reports)
    live = sum(r.proved_live for r in reports)
    replayed = sum(r.proved_from_cache for r in reports)
    print()
    print(
        f"{dispatched} sequents dispatched: {live} proved live, "
        f"{replayed} replayed (shared cache + dedup pre-pass)."
    )
    if cache is not None:
        print(
            f"Cache: {cache.stats.hits} hits / {cache.stats.lookups} lookups "
            f"({cache.stats.hit_rate:.0%}), {cache.stats.stores} stores, "
            f"disk tier at {args.cache_dir!r}."
        )


if __name__ == "__main__":
    main()
