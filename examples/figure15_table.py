#!/usr/bin/env python3
"""Regenerate the Figure 15 table: per-data-structure sequent counts and times.

For every data structure of the bundled suite (paper Section 7), every
contracted method is verified with the structure's prover order, and one row
of the table is printed: how many sequents each prover proved, the total
verification time, and whether every obligation was discharged.

The whole table shares one on-disk sequent cache (``--cache-dir``) and the
dedup pre-pass: obligations that recur across methods and structures —
invariant re-establishment, frame conjuncts, recurring null checks — are
proved once and replayed everywhere else, so a full table run reports fewer
live proofs than sequents dispatched, and a *re*-run replays almost
everything.  Per-sequent budgets (``--budget``) are enforced inside every
prover (see the Deadline contract in ``repro.provers.base``), so a stuck
decision procedure is cut off instead of stalling its row.

This is the full reproduction run and takes several minutes; pass a subset
of structure names to restrict it, e.g.::

    python examples/figure15_table.py SinglyLinkedList SizedList
    python examples/figure15_table.py --workers 4 --budget 10

With ``--server host:port`` the table is regenerated *through a verify
daemon* (``python -m repro.server``) instead of in-process: sources are
shipped to the daemon, obligations are batched and deduplicated across
every client the daemon serves, and verdicts come from its sharded store —
a warm daemon reproduces the table without proving anything live, and the
rows are byte-identical to a local warm-cache run.  ``--cache-dir`` /
``--workers`` are daemon-side concerns in that mode and are ignored.
"""

import argparse

from repro import suite
from repro.core.report import format_table
from repro.provers.cache import SequentCache


def _print_profile(report) -> None:
    """Per-phase breakdown of one structure: frontend, then each prover.

    Phase spans are the engines' own monotonic timers; per live answer they
    sum exactly to the answer's measured wall time (``other`` is the
    remainder bucket ``Prover.prove`` adds), so each prover's line adds up
    to its ``ProverStats.time``.  Cache replays contribute nothing.
    """
    frontend = report.frontend_phases
    if frontend:
        spans = ", ".join(f"{name} {seconds:.2f}s" for name, seconds in sorted(frontend.items()))
        print(f"     profile frontend: {spans}")
    for prover, phases in sorted(report.phase_times().items()):
        total = sum(phases.values())
        spans = ", ".join(
            f"{name} {seconds:.2f}s"
            for name, seconds in sorted(phases.items(), key=lambda kv: -kv[1])
        )
        print(f"     profile {prover} ({total:.2f}s): {spans}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("names", nargs="*", help="suite structures to verify (default: all)")
    parser.add_argument(
        "--cache-dir", default=".figure15-cache",
        help="on-disk sequent cache shared by the whole table (default: %(default)s)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the shared disk cache"
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="worker pool size per method (default: 1)"
    )
    parser.add_argument(
        "--budget", type=float, default=None,
        help="enforced per-sequent time budget in seconds (default: none)",
    )
    parser.add_argument(
        "--static-tier", action="store_true",
        help="enable the static-discharge pre-pass: sequents provable from "
        "dataflow facts alone resolve with the STATIC verdict before any "
        "prover runs (adds the Static column to the table)",
    )
    parser.add_argument(
        "--race", type=int, default=1, metavar="K",
        help="race the top-K provers per sequent instead of trying them in "
        "order; the learned prover ordering is persisted beside --cache-dir "
        "(daemon-side with --server)",
    )
    parser.add_argument(
        "--server", default=None, metavar="HOST:PORT",
        help="verify through a running daemon (python -m repro.server) "
        "instead of in-process; its sharded store replaces --cache-dir",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print the per-phase time breakdown (parse/vcgen frontend, then "
        "per-prover translate/clausify/instantiation/sat/theory/saturate "
        "spans of live attempts) after each structure's row",
    )
    args = parser.parse_args()

    names = args.names or list(suite.FIGURE15_NAMES)
    provers = ["smt", "fol", "mona", "bapa"]
    prover_options = {"smt": {"timeout": 3.0}, "fol": {"timeout": 1.5}}
    client = cache = ordering = None
    if args.server:
        from repro.server import VerifyClient

        client = VerifyClient.from_address(args.server)
    elif not args.no_cache:
        cache = SequentCache(cache_dir=args.cache_dir)
    if args.race > 1 and client is None:
        import os

        from repro.provers.ordering import DEFAULT_FILENAME, ProverOrdering

        path = None if args.no_cache else os.path.join(args.cache_dir, DEFAULT_FILENAME)
        ordering = ProverOrdering(path=path)
    reports = []
    for name in names:
        print(f"verifying {name} ...", flush=True)
        if client is not None:
            report = client.verify_class(
                suite.source(name),
                class_name=suite.entry(name).name,
                provers=provers,
                prover_options=prover_options,
                sequent_budget=args.budget,
            )
        else:
            report = suite.verify_structure(
                name,
                provers=provers,
                prover_options=prover_options,
                cache=cache,
                dedup=True,
                workers=args.workers,
                sequent_budget=args.budget,
                static_tier=args.static_tier,
                race=args.race,
                ordering=ordering,
            )
        reports.append(report)
        row = report.row(provers)
        print("  ", {k: v for k, v in row.items() if v})
        if args.profile:
            _print_profile(report)
    print()
    print(format_table(reports, provers))

    dispatched = sum(r.total_sequents for r in reports)
    live = sum(r.proved_live for r in reports)
    # Replays whatever the verdict (cached UNKNOWN/TIMEOUTs included), not
    # just replayed proofs — the table's warm-traffic number.
    replayed = sum(r.replayed_sequents for r in reports)
    print()
    print(
        f"{dispatched} sequents dispatched: {live} proved live, "
        f"{replayed} replayed (shared cache + dedup pre-pass)."
    )
    races = sum(r.races_run for r in reports)
    if races:
        cancelled = sum(r.cancelled_answers for r in reports)
        reclaimed = sum(r.cancelled_reclaimed for r in reports)
        wins: dict = {}
        for r in reports:
            for prover, count in r.race_wins.items():
                wins[prover] = wins.get(prover, 0) + count
        won = ", ".join(f"{p} {n}" for p, n in sorted(wins.items(), key=lambda kv: -kv[1]))
        # With --server the daemon chooses K; the client only sees the counters.
        top = "server-side" if args.server else f"top-{args.race}"
        print(
            f"Raced {races} waves ({top}): {cancelled} attempts "
            f"cancelled, {reclaimed:.1f} s of prover budget reclaimed"
            + (f" [wins: {won}]" if won else ".")
        )
        if ordering is not None and ordering.path:
            print(f"Learned prover ordering ({ordering.bucket_count()} buckets) at {ordering.path!r}.")
    statically = sum(r.statically_discharged for r in reports)
    if statically:
        print(
            f"{statically} sequents statically discharged before any prover ran "
            "(dataflow facts alone)."
        )
    if client is not None:
        stats = client.stats()
        store, service = stats["store"], stats["service"]
        print(
            f"Daemon {args.server}: store {store['hits']} hits / "
            f"{store['hits'] + store['misses']} lookups across "
            f"{store['shards']} shards; {service['live_proved']} proved live "
            f"daemon-wide, {service['live_reproofs']} re-proofs."
        )
        client.close()
    elif cache is not None:
        print(
            f"Cache: {cache.stats.hits} hits / {cache.stats.lookups} lookups "
            f"({cache.stats.hit_rate:.0%}), {cache.stats.stores} stores, "
            f"disk tier at {args.cache_dir!r}."
        )


if __name__ == "__main__":
    main()
