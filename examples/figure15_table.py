#!/usr/bin/env python3
"""Regenerate the Figure 15 table: per-data-structure sequent counts and times.

For every data structure of the bundled suite (paper Section 7), every
contracted method is verified with the structure's prover order, and one row
of the table is printed: how many sequents each prover proved, the total
verification time, and whether every obligation was discharged.

This is the full reproduction run and takes several minutes; pass a subset
of structure names as command-line arguments to restrict it, e.g.::

    python examples/figure15_table.py SinglyLinkedList SizedList
"""

import sys

from repro import suite
from repro.core.report import format_table


def main() -> None:
    names = sys.argv[1:] or list(suite.FIGURE15_NAMES)
    provers = ["smt", "fol", "mona", "bapa"]
    reports = []
    for name in names:
        print(f"verifying {name} ...", flush=True)
        report = suite.verify_structure(
            name,
            provers=provers,
            prover_options={"smt": {"timeout": 3.0}, "fol": {"timeout": 1.5}},
        )
        reports.append(report)
        row = report.row(provers)
        print("  ", {k: v for k, v in row.items() if v})
    print()
    print(format_table(reports, provers))


if __name__ == "__main__":
    main()
