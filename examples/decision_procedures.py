#!/usr/bin/env python3
"""Using the decision procedures directly (paper Section 6).

The provers integrated into the verifier are ordinary Python objects and can
be used standalone: this example feeds hand-written sequents to the WS1S
(MONA-role) engine, the BAPA decision procedure, the SMT-style prover and
the first-order resolution prover, and shows the per-prover verdicts —
the essence of the "integrated reasoning" architecture of Figure 1.
"""

from repro.bapa import BapaProver
from repro.fol import FirstOrderProver
from repro.form import parse
from repro.mona import MonaProver, ws1s
from repro.smt import SmtProver
from repro.vcgen.sequent import sequent


def show(title, seq):
    print(f"== {title}")
    for prover in (SmtProver(timeout=3), MonaProver(), BapaProver(), FirstOrderProver(timeout=3)):
        answer = prover.prove(seq)
        print(f"   {prover.name:6s} -> {answer.verdict.value:12s} {answer.detail[:60]}")
    print()


def main() -> None:
    # Monadic set reasoning (MONA's home turf).
    show(
        "frame of an insertion",
        sequent(
            [parse("x ~: content"), parse("content1 = content Un {x}")],
            parse("content = content1 - {x}"),
        ),
    )

    # Cardinality reasoning (BAPA's home turf, Section 2.2).
    show(
        "size invariant of the sized list",
        sequent(
            [parse("size = card content"), parse("x ~: content"), parse("x ~= null")],
            parse("size + 1 = card (content Un {x})"),
        ),
    )

    # Ground heap reasoning (the SMT role).
    show(
        "field update read-back",
        sequent(
            [parse("n1 ~= n2"), parse("(fieldWrite next n1 root) n2 = q")],
            parse("next n2 = q"),
        ),
    )

    # Quantified reasoning (the first-order prover role).
    show(
        "instantiating a class invariant",
        sequent(
            [parse("ALL x. x : Node --> x..f ~= null"), parse("a : Node")],
            parse("a..f ~= null"),
        ),
    )

    # The WS1S engine can also be used directly, e.g. to prove induction
    # over the positions of a word model:
    induction = ws1s.ImpliesW(
        ws1s.AndW(
            (
                ws1s.Exists1W("z", ws1s.AndW((ws1s.FirstW("z"), ws1s.InW("z", "X")))),
                ws1s.forall1(
                    "x",
                    ws1s.forall1(
                        "y",
                        ws1s.ImpliesW(
                            ws1s.AndW((ws1s.InW("x", "X"), ws1s.SuccW("x", "y"))),
                            ws1s.InW("y", "X"),
                        ),
                    ),
                ),
            )
        ),
        ws1s.forall1("z", ws1s.InW("z", "X")),
    )
    print("WS1S induction principle valid:", ws1s.is_valid(induction))


if __name__ == "__main__":
    main()
